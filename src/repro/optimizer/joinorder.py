"""Cost-based join-order search over n-way natural-join trees.

The paper's flexible relations make n-way natural joins over variant fragments
the canonical workload: restoring a decomposition, or correlating a fact
relation with several dimension fragments, produces chains and stars of
:class:`~repro.algebra.expressions.NaturalJoin` nodes.  The *order* in which
those joins run is semantically free but can change the intermediate sizes —
and therefore the work — by orders of magnitude.  This module implements the
classic Selinger-style answer on top of the statistics subsystem:

1.  :func:`extract_join_graph` flattens a nested ``NaturalJoin`` tree into a
    **join graph**: the *atoms* (the non-join sub-expressions at the leaves —
    base relations, selection/guard chains, projections, whole multiway joins)
    and the **equi-join edges** between atoms whose attribute universes
    overlap.  Guards and selections stay glued to their atom, so pushdown is
    unaffected by reordering.
2.  :func:`order_joins` searches the reordering space:

    * ``"dp"`` (the default) — bottom-up dynamic programming over *connected*
      subsets of atoms, bitset-keyed, producing **bushy** trees.  Every
      connected subset is planned once; each split of a subset into two
      connected, edge-linked halves is priced and only the cheapest plan per
      subset survives.  Cross-products are never enumerated (the extractor
      guarantees a connected graph; a disconnected one refuses to reorder).
      Above ``dp_threshold`` relations (default 10, where 3^n subset splits
      start to bite) the search silently falls back to greedy.
    * ``"greedy"`` — repeatedly joins the edge-connected pair of partial plans
      with the smallest estimated *output* cardinality: O(n³) instead of 3^n,
      and usually within a small factor of the DP plan.
    * ``"smallest"`` — the pre-search baseline, kept for benchmarking: a
      left-deep chain that starts at the smallest atom and always appends the
      smallest *input* connected to the tree so far, ignoring join
      selectivities entirely.  This is the order a planner without statistics
      on join attributes would pick (it is how MultiwayJoin fragments are
      ordered), and the E13 benchmark measures how badly it loses.

**How the estimates are derived.**  Atom cardinalities come from the existing
:class:`~repro.optimizer.cost.CostModel` — histogram/MCV selection
selectivities, variant-tag guard fractions — so a filtered atom is priced at
its post-selection size.  Each edge carries a join selectivity from
:func:`repro.stats.statistics.join_selectivity`: the NDV-overlap factor
``1/max(ndv_L, ndv_R)`` per join attribute multiplied by both sides'
variant-tag *presence* fractions (tuples lacking a join attribute can never
join — the flexible-relation twist).  The cardinality of a join of two
subsets is ``|A| · |B| · sel(cut)`` where the cut selectivity is accounted
**per crossing attribute, not per crossing edge** (:func:`_cut_selectivity`):
when one attribute connects more than two atoms the extractor materializes an
edge per carrier pair, and multiplying per edge would charge the same equality
constraint several times, collapsing the estimates of attribute cliques.  Per
attribute, the NDV factor applies once per cut (each side's NDV being the
minimum over its carriers) and each carrier's presence fraction is charged at
the cut where it first meets another carrier; for plain two-carrier attributes
this is exactly the per-edge number.  All orders agree on the root cardinality
under this accounting and differ only in intermediate sizes — exactly the
quantity the search minimizes.  The work of a join is the hash-join build+probe cost
(both input cardinalities plus the output), or the cheaper index-probe cost
``|outer| · (probe_factor + index fan-out)`` when the inner side is a base
relation with a covering maintained hash index — mirroring the planner's
:class:`~repro.exec.operators.IndexLookupJoin` decision so the search does not
steer away from plans the engine can execute cheaply.

**When is reordering safe?**  Natural joins over *flexible* relations drop
tuples that lack a join attribute, so reassociation is only sound when every
tree shape performs the same definedness checks.  The extractor therefore
computes each atom's **attribute universe** (every attribute a tuple of the
atom can possibly carry, from the catalog's flexible schemes) and only
reorders when each original join's ``on`` set equals the universe intersection
of its two sides — i.e. the tree is a *pure* natural join over the universes.
Under that condition the result is provably order-independent: a combination
of atom tuples survives iff all atoms pairwise agree on their commonly defined
attributes and no atom is missing an attribute that another atom's universe
shares (any tree tests both, at the nodes separating the atoms involved).
Trees with narrowed ``on`` sets, data-dependent joins (``on=None``) or
unresolvable universes keep their written order — the search degrades to a
no-op, never to a wrong plan.

:class:`JoinSearchReport` records what the search did — mode, relation count,
subsets enumerated, candidate plans priced and pruned, and the chosen order —
and is rendered by ``plan.explain()`` / ``Database.explain()``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.expressions import (
    Difference,
    EmptyRelation,
    Expression,
    Extension,
    MultiwayJoin,
    NaturalJoin,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    TypeGuardNode,
    Union,
)
from repro.errors import OptimizerError
from repro.model.attributes import AttributeSet, attrset
from repro.obs.feedback import attribute_carriers, referenced_tables
from repro.optimizer.cost import CostEstimate, CostModel
from repro.stats.statistics import TableStatistics, join_selectivity

#: the default search strategy (DP below the threshold, greedy above)
DEFAULT_JOIN_SEARCH = "dp"

#: DP is exhaustive (3^n subset splits); above this many relations it falls
#: back to the O(n³) greedy search
DEFAULT_DP_THRESHOLD = 10

#: the valid ``join_order_search`` modes, in decreasing thoroughness
SEARCH_MODES = ("dp", "greedy", "smallest", "none")

#: a join tree with fewer atoms than this has nothing to reorder (2-way joins
#: are handled by the planner's build-side / index-lookup decisions)
MIN_RELATIONS = 3

#: per-edge join selectivity assumed when neither atom has base statistics
DEFAULT_EDGE_SELECTIVITY = 0.5

#: default estimated cost of one index probe relative to reading one tuple in
#: a scan; the physical planner passes its own (configurable) factor in so the
#: search and the lowering price probes identically
INDEX_PROBE_COST_FACTOR = 2.0


class JoinAtom:
    """One leaf of the join graph: a non-join sub-expression plus its metadata."""

    def __init__(self, index: int, expression: Expression, universe: AttributeSet,
                 estimate: CostEstimate,
                 statistics: Optional[TableStatistics] = None,
                 relation: Optional[str] = None):
        self.index = index
        self.expression = expression
        #: every attribute a tuple of this atom can possibly carry
        self.universe = universe
        #: the universe as a plain name set (hot path of the cut selectivity)
        self.universe_names = {a.name for a in universe}
        self.estimate = estimate
        #: base-table statistics when the atom is a selection/guard/projection
        #: chain over one base relation (feeds the edge selectivities)
        self.statistics = statistics
        #: the base relation name when the atom is a *bare* RelationRef — only
        #: those are candidates for index-probe pricing
        self.relation = relation
        self.label = _atom_label(expression)

    def __repr__(self) -> str:
        return "JoinAtom({}, {!r}, |U|={})".format(self.index, self.label,
                                                   len(self.universe))


class JoinEdge:
    """An equi-join edge between two atoms sharing universe attributes."""

    def __init__(self, left: int, right: int, attributes: AttributeSet):
        self.left = left
        self.right = right
        self.attributes = attributes
        #: estimated fraction of left×right pairs surviving the join on these
        #: attributes; filled in by the search from the atoms' statistics
        self.selectivity = DEFAULT_EDGE_SELECTIVITY

    def __repr__(self) -> str:
        return "JoinEdge({}-{}, on={}, sel={:.2g})".format(
            self.left, self.right, self.attributes, self.selectivity)


class JoinGraph:
    """Atoms plus equi-join edges — the input of the order search."""

    def __init__(self, atoms: Sequence[JoinAtom], edges: Sequence[JoinEdge]):
        self.atoms = list(atoms)
        self.edges = list(edges)
        #: adjacency as bitmasks: ``neighbors[i]`` has bit j set iff an edge
        #: connects atoms i and j
        self.neighbors = [0] * len(self.atoms)
        for edge in self.edges:
            self.neighbors[edge.left] |= 1 << edge.right
            self.neighbors[edge.right] |= 1 << edge.left

    def __len__(self) -> int:
        return len(self.atoms)

    def universe(self, mask: int) -> AttributeSet:
        """The attribute universe of the subset encoded by ``mask``."""
        result = AttributeSet()
        for atom in self._atoms_of(mask):
            result = result | atom.universe
        return result

    def connected(self, mask: int) -> bool:
        """Whether the subset encoded by ``mask`` is edge-connected."""
        if mask == 0:
            return False
        start = mask & -mask
        reached = start
        frontier = start
        while frontier:
            index = frontier.bit_length() - 1
            frontier &= ~(1 << index)
            expand = self.neighbors[index] & mask & ~reached
            reached |= expand
            frontier |= expand
        return reached == mask

    def crosses(self, left_mask: int, right_mask: int) -> bool:
        """Whether any edge connects the two (disjoint) subsets — O(n) bit test."""
        mask = left_mask
        while mask:
            index = (mask & -mask).bit_length() - 1
            if self.neighbors[index] & right_mask:
                return True
            mask &= mask - 1
        return False

    def crossing_attributes(self, left_mask: int, right_mask: int) -> AttributeSet:
        """Union of edge attributes between the two (disjoint) subsets."""
        result = AttributeSet()
        for edge in self.edges:
            if _crosses(edge, left_mask, right_mask):
                result = result | edge.attributes
        return result

    def _atoms_of(self, mask: int):
        for atom in self.atoms:
            if mask & (1 << atom.index):
                yield atom


class JoinSearchReport:
    """What one join-order search did; rendered by ``plan.explain()``."""

    def __init__(self, mode: str, relations: int, subsets_enumerated: int,
                 plans_considered: int, plans_pruned: int, order: str,
                 estimated_rows: float, estimated_cost: float,
                 fallback: bool = False):
        self.mode = mode
        self.relations = relations
        #: connected subsets that received a plan (DP) / partial plans built (greedy)
        self.subsets_enumerated = subsets_enumerated
        #: candidate (left, right) splits that were priced
        self.plans_considered = plans_considered
        #: priced candidates discarded for a cheaper plan of the same subset
        self.plans_pruned = plans_pruned
        #: the chosen join order, innermost parentheses first
        self.order = order
        self.estimated_rows = estimated_rows
        self.estimated_cost = estimated_cost
        #: True when ``mode == "dp"`` was requested but the relation count
        #: exceeded the threshold and greedy ran instead
        self.fallback = fallback

    def describe(self) -> str:
        """One-line summary for explain output."""
        mode = self.mode + ("(fallback)" if self.fallback else "")
        return ("join-order[{}]: relations={} subsets={} considered={} "
                "pruned={} est_rows={:.1f} est_cost={:.1f}\n  order: {}").format(
                    mode, self.relations, self.subsets_enumerated,
                    self.plans_considered, self.plans_pruned,
                    self.estimated_rows, self.estimated_cost, self.order)

    def as_dict(self) -> dict:
        return {
            "mode": self.mode, "relations": self.relations,
            "subsets_enumerated": self.subsets_enumerated,
            "plans_considered": self.plans_considered,
            "plans_pruned": self.plans_pruned, "order": self.order,
            "estimated_rows": self.estimated_rows,
            "estimated_cost": self.estimated_cost, "fallback": self.fallback,
        }

    def __repr__(self) -> str:
        return "JoinSearchReport({})".format(self.as_dict())


class JoinOrderResult:
    """The reordered expression tree plus everything the planner needs.

    ``estimates`` maps ``id(node)`` of every node of the new tree (and of the
    original root) to the search's :class:`CostEstimate`, so the planner's
    per-node ``est_rows`` / ``est_cost`` annotations stay honest — the default
    cost model cannot price composed joins (it has no base statistics for
    them), the search can.  ``join_nodes`` lists the NaturalJoin nodes the
    search created, so the planner skips re-searching them.
    """

    def __init__(self, expression: Expression, estimates: Dict[int, CostEstimate],
                 join_nodes: List[Expression], report: JoinSearchReport):
        self.expression = expression
        self.estimates = estimates
        self.join_nodes = join_nodes
        self.report = report


class _Plan:
    """A partial plan over one atom subset during the search."""

    __slots__ = ("mask", "cardinality", "cost", "bound", "left", "right", "atom")

    def __init__(self, mask, cardinality, cost, bound, left=None, right=None,
                 atom=None):
        self.mask = mask
        self.cardinality = cardinality
        self.cost = cost
        self.bound = bound
        self.left = left
        self.right = right
        self.atom = atom


# -- join-graph extraction ---------------------------------------------------------------


def _atom_label(expression: Expression) -> str:
    """A compact label for the chosen-order rendering (``σ(name)``, ``τ(name)``…)."""
    if isinstance(expression, RelationRef):
        return expression.name
    if isinstance(expression, Selection):
        return "σ({})".format(_atom_label(expression.child))
    if isinstance(expression, TypeGuardNode):
        return "τ({})".format(_atom_label(expression.child))
    if isinstance(expression, Projection):
        return "π({})".format(_atom_label(expression.child))
    return expression.operator


def _relation_universe(source, name: str) -> Optional[AttributeSet]:
    """The declared attribute universe of a base relation, or ``None``.

    Databases answer from the catalog's flexible scheme; plain mappings answer
    when the entry is a :class:`~repro.model.relation.FlexibleRelation` (which
    carries its scheme).  Bare tuple sets have no declared universe — the
    caller then refuses to reorder rather than guess from the data.
    """
    relation = None
    if hasattr(source, "table"):
        try:
            relation = source.table(name)
        except Exception:
            return None
    elif isinstance(source, dict):
        relation = source.get(name)
    if relation is None:
        return None
    definition = getattr(relation, "definition", None)
    scheme = getattr(definition, "scheme", None) or getattr(relation, "scheme", None)
    attributes = getattr(scheme, "attributes", None)
    if attributes is None:
        return None
    return attrset(attributes)


def _universe(expression: Expression, source) -> Optional[AttributeSet]:
    """Every attribute a result tuple of ``expression`` can possibly carry.

    ``None`` when a base relation's scheme cannot be resolved — the safety
    check below then refuses to reorder.  The computed universe may be a loose
    superset of what the data exhibits; that is sufficient for the
    order-independence argument (see the module docstring) and keeps the check
    purely static.
    """
    if isinstance(expression, RelationRef):
        return _relation_universe(source, expression.name)
    if isinstance(expression, EmptyRelation):
        return AttributeSet()
    if isinstance(expression, (Selection, TypeGuardNode)):
        return _universe(expression.child, source)
    if isinstance(expression, Projection):
        child = _universe(expression.child, source)
        return None if child is None else child & expression.attributes
    if isinstance(expression, Extension):
        child = _universe(expression.child, source)
        return None if child is None else child | attrset(expression.attribute)
    if isinstance(expression, Rename):
        child = _universe(expression.child, source)
        if child is None:
            return None
        return attrset(expression.mapping.get(a.name, a.name) for a in child)
    if isinstance(expression, Difference):
        return _universe(expression.left, source)
    if isinstance(expression, (Union, Product, NaturalJoin, MultiwayJoin)):
        result = AttributeSet()
        for child in expression.children:
            child_universe = _universe(child, source)
            if child_universe is None:
                return None
            result = result | child_universe
        return result
    return None


def _flatten(expression: Expression, atoms: List[Expression],
             joins: List[NaturalJoin]) -> None:
    """Collect the atoms and internal join nodes of a NaturalJoin tree."""
    if (isinstance(expression, NaturalJoin) and expression.on is not None
            and len(expression.on)):
        joins.append(expression)
        _flatten(expression.left, atoms, joins)
        _flatten(expression.right, atoms, joins)
    else:
        atoms.append(expression)


def extract_join_graph(expression: Expression, source) -> Optional[JoinGraph]:
    """Flatten a nested NaturalJoin tree into a :class:`JoinGraph`.

    Returns ``None`` — *keep the written order* — when the tree has fewer than
    :data:`MIN_RELATIONS` atoms, when any atom's attribute universe cannot be
    resolved statically, when any join's ``on`` set differs from the universe
    intersection of its sides (a narrowed or widened join is not a pure natural
    join, so reordering could change results or definedness checks), or when
    the resulting graph is not connected (reordering would have to invent
    cross-products the original tree does not contain).
    """
    atom_expressions: List[Expression] = []
    join_nodes: List[NaturalJoin] = []
    _flatten(expression, atom_expressions, join_nodes)
    if len(atom_expressions) < MIN_RELATIONS:
        return None

    universes: Dict[int, AttributeSet] = {}
    for atom in atom_expressions:
        universe = _universe(atom, source)
        if universe is None:
            return None
        universes[id(atom)] = universe

    # Safety: every written join must be a *pure* natural join — its ``on``
    # attributes exactly the universe intersection of its sides.
    def subtree_universe(node: Expression) -> AttributeSet:
        if id(node) in universes:
            return universes[id(node)]
        assert isinstance(node, NaturalJoin)
        return subtree_universe(node.left) | subtree_universe(node.right)

    for join in join_nodes:
        intersection = subtree_universe(join.left) & subtree_universe(join.right)
        if attrset(join.on) != intersection:
            return None

    atoms = [JoinAtom(index, atom, universes[id(atom)],
                      CostEstimate(0.0, 0.0))
             for index, atom in enumerate(atom_expressions)]
    edges = []
    for i in range(len(atoms)):
        for j in range(i + 1, len(atoms)):
            shared = atoms[i].universe & atoms[j].universe
            if shared:
                edges.append(JoinEdge(i, j, shared))
    graph = JoinGraph(atoms, edges)
    if not graph.connected((1 << len(atoms)) - 1):
        return None
    return graph


# -- pricing -----------------------------------------------------------------------------


def _crosses(edge: JoinEdge, left_mask: int, right_mask: int) -> bool:
    left_bit, right_bit = 1 << edge.left, 1 << edge.right
    return bool((left_mask & left_bit and right_mask & right_bit)
                or (left_mask & right_bit and right_mask & left_bit))


def _price_atoms(graph: JoinGraph, cost_model: CostModel, memo: Dict) -> None:
    """Fill in atom estimates/statistics and edge selectivities from the model."""
    for atom in graph.atoms:
        atom.estimate = cost_model.estimate(atom.expression, _memo=memo)
        atom.statistics = cost_model.base_statistics(atom.expression)
        if isinstance(atom.expression, RelationRef):
            atom.relation = atom.expression.name
    for edge in graph.edges:
        left, right = graph.atoms[edge.left], graph.atoms[edge.right]
        if left.statistics is not None and right.statistics is not None:
            edge.selectivity = join_selectivity(left.statistics, right.statistics,
                                                edge.attributes)
        else:
            edge.selectivity = DEFAULT_EDGE_SELECTIVITY


def _index_fanout(cost_model: CostModel, atom: JoinAtom,
                  attributes: AttributeSet) -> Optional[float]:
    """Average bucket size of a maintained index of ``atom`` covering ``attributes``.

    ``None`` when the atom is not a bare base relation, the source does not
    resolve it, or no maintained hash index is covered by the join attributes —
    mirroring :meth:`repro.engine.database.Table.index_for`.
    """
    if atom.relation is None or cost_model.source is None:
        return None
    if not hasattr(cost_model.source, "relation"):
        return None
    try:
        table = cost_model.source.relation(atom.relation)
    except Exception:
        return None
    index_for = getattr(table, "index_for", None)
    index = index_for(attributes) if index_for is not None else None
    if index is None:
        return None
    bucket_size = getattr(index, "average_bucket_size", None)
    if bucket_size is None:
        return 1.0
    return max(1.0, bucket_size())


def _cut_selectivity(graph: JoinGraph, left_mask: int, right_mask: int,
                     cost_model: Optional[CostModel] = None) -> Optional[float]:
    """Per-**attribute** selectivity of the cut between two disjoint subsets.

    Multiplying per crossing *edge* over-reduces the estimate on attribute
    cliques: when one attribute connects more than two atoms, the extractor
    creates an edge for every carrier pair, so a single equality constraint is
    charged once per edge (``1/ndv`` squared or worse) and its presence
    fractions are double-counted.  This accounts per attribute instead:

    * the NDV-overlap factor ``1/max(ndv_L, ndv_R)`` is applied **once** per
      crossing attribute, where each side's NDV is the *minimum* over its
      carriers (the side's internal joins on the attribute already reduced its
      distinct count);
    * a carrier atom's *presence* fraction for an attribute is charged only at
      the cut where it first meets another carrier of that attribute (i.e.
      when it is its side's only carrier), and **marginally per attribute**:
      every (atom, attribute) pair is charged at exactly one cut of any join
      tree, which keeps the root-cardinality estimate independent of the join
      order — the invariant the DP relies on.  (Charging an atom's attributes
      jointly would price correlated presence better at a single cut, but a
      tree that splits the same charges across two cuts would price them
      marginally, making the root estimate depend on the association.)

    For a plain two-carrier single-attribute edge this reduces exactly to the
    per-edge number, so non-clique graphs (stars, chains) price identically.
    Returns ``None`` when any involved atom lacks base statistics — the caller
    then falls back to the per-edge default-selectivity product.

    An **observed** edge selectivity from the cost model's feedback store
    (recorded off an executed mis-estimated join over the same attribute and
    carrier tables) takes precedence over the NDV math for its attribute —
    and, unlike statistics, survives the carriers' ANALYZE data going stale.
    This is how one badly-ordered execution re-orders the next plan: the
    observed fraction prices candidate cuts the search never executed.
    """
    feedback = getattr(cost_model, "feedback", None) if cost_model else None
    feedback_version = None
    if feedback is not None and len(feedback):
        feedback_version = getattr(cost_model.statistics, "version", None)
    names = sorted({attribute.name for edge in graph.edges
                    if _crosses(edge, left_mask, right_mask)
                    for attribute in edge.attributes})
    selectivity = 1.0
    for name in names:
        if feedback_version is not None:
            tables = set()
            for atom in graph._atoms_of(left_mask | right_mask):
                if name in atom.universe_names:
                    tables |= referenced_tables(atom.expression)
            carriers = attribute_carriers(cost_model.source, tables, name)
            if carriers:
                observed = feedback.lookup_edge(name, carriers,
                                                feedback_version)
                if observed is not None:
                    selectivity *= observed
                    continue
        side_ndvs = []
        for mask in (left_mask, right_mask):
            carriers = [atom for atom in graph._atoms_of(mask)
                        if name in atom.universe_names]
            if any(atom.statistics is None for atom in carriers):
                return None
            if not carriers:
                return None
            if len(carriers) == 1:
                selectivity *= carriers[0].statistics.guard_selectivity([name])
            side_ndvs.append(min(atom.statistics.ndv(name) for atom in carriers))
        selectivity /= float(max(side_ndvs[0], side_ndvs[1], 1))
    return max(0.0, min(1.0, selectivity))


def _join_plans(graph: JoinGraph, cost_model: CostModel,
                left: _Plan, right: _Plan,
                probe_factor: float = INDEX_PROBE_COST_FACTOR) -> _Plan:
    """Price the join of two disjoint partial plans (hash or index probe)."""
    selectivity = _cut_selectivity(graph, left.mask, right.mask, cost_model)
    if selectivity is None:
        # Statistics-free atoms: the per-edge default selectivities apply.
        selectivity = 1.0
        for edge in graph.edges:
            if _crosses(edge, left.mask, right.mask):
                selectivity *= edge.selectivity
    cardinality = left.cardinality * right.cardinality * selectivity
    bound = left.bound * right.bound
    join_work = left.cardinality + right.cardinality + cardinality
    # An index probe replaces scanning a single-atom inner side when the inner
    # base relation has a covering maintained index and the outer side is small.
    for outer, inner in ((left, right), (right, left)):
        if inner.atom is None:
            continue
        attributes = graph.crossing_attributes(outer.mask, inner.mask)
        fan_out = _index_fanout(cost_model, graph.atoms[inner.atom], attributes)
        if fan_out is None:
            continue
        probe_work = outer.cardinality * (probe_factor + fan_out)
        join_work = min(join_work, probe_work + cardinality)
    return _Plan(left.mask | right.mask, cardinality,
                 left.cost + right.cost + join_work, bound, left, right)


def _leaf_plans(graph: JoinGraph) -> Dict[int, _Plan]:
    plans = {}
    for atom in graph.atoms:
        estimate = atom.estimate
        plans[1 << atom.index] = _Plan(1 << atom.index, estimate.cardinality,
                                       estimate.work, estimate.bound,
                                       atom=atom.index)
    return plans


# -- search strategies -------------------------------------------------------------------


def _search_dp(graph: JoinGraph, cost_model: CostModel,
               probe_factor: float = INDEX_PROBE_COST_FACTOR):
    """Bottom-up DP over connected subsets (bushy trees, bitset-keyed memo)."""
    n = len(graph)
    best = _leaf_plans(graph)
    considered = pruned = 0
    for mask in range(1, 1 << n):
        if mask & (mask - 1) == 0:  # singleton, already seeded
            continue
        # Enumerate proper submask splits; (sub, rest) and (rest, sub) describe
        # the same commutative join, so only the half with the lowest atom in
        # ``sub`` is priced.
        lowest = mask & -mask
        sub = (mask - 1) & mask
        while sub:
            rest = mask ^ sub
            if sub & lowest:
                left_plan = best.get(sub)
                right_plan = best.get(rest)
                if (left_plan is not None and right_plan is not None
                        and graph.crosses(sub, rest)):
                    candidate = _join_plans(graph, cost_model, left_plan,
                                            right_plan, probe_factor)
                    considered += 1
                    incumbent = best.get(mask)
                    if incumbent is None or candidate.cost < incumbent.cost:
                        if incumbent is not None:
                            pruned += 1
                        best[mask] = candidate
                    else:
                        pruned += 1
            sub = (sub - 1) & mask
    full = (1 << n) - 1
    return best.get(full), len(best), considered, pruned


def _search_greedy(graph: JoinGraph, cost_model: CostModel,
                   probe_factor: float = INDEX_PROBE_COST_FACTOR):
    """Greedy bushy search: always join the pair with the smallest output."""
    plans = list(_leaf_plans(graph).values())
    considered = pruned = 0
    subsets = len(plans)
    while len(plans) > 1:
        best_pair = None
        best_candidate = None
        for i in range(len(plans)):
            for j in range(i + 1, len(plans)):
                if not graph.crosses(plans[i].mask, plans[j].mask):
                    continue
                candidate = _join_plans(graph, cost_model, plans[i], plans[j],
                                        probe_factor)
                considered += 1
                key = (candidate.cardinality, candidate.cost)
                if best_candidate is None or key < (best_candidate.cardinality,
                                                    best_candidate.cost):
                    if best_candidate is not None:
                        pruned += 1
                    best_pair = (i, j)
                    best_candidate = candidate
                else:
                    pruned += 1
        if best_candidate is None:  # defensive: disconnected graph
            return None, subsets, considered, pruned
        i, j = best_pair
        plans = [plan for k, plan in enumerate(plans) if k not in (i, j)]
        plans.append(best_candidate)
        subsets += 1
    return plans[0], subsets, considered, pruned


def _search_smallest(graph: JoinGraph, cost_model: CostModel,
                     probe_factor: float = INDEX_PROBE_COST_FACTOR):
    """The pre-search baseline: left-deep, smallest connected *input* first."""
    leaves = _leaf_plans(graph)
    remaining = sorted(leaves.values(), key=lambda plan: plan.cardinality)
    current = remaining.pop(0)
    considered = 0
    subsets = len(graph)
    while remaining:
        index = next((k for k, plan in enumerate(remaining)
                      if graph.crosses(current.mask, plan.mask)), None)
        if index is None:  # defensive: disconnected graph
            return None, subsets, considered, 0
        current = _join_plans(graph, cost_model, current, remaining.pop(index),
                              probe_factor)
        considered += 1
        subsets += 1
    return current, subsets, considered, 0


# -- result construction -----------------------------------------------------------------


def _build_expression(graph: JoinGraph, plan: _Plan,
                      estimates: Dict[int, CostEstimate],
                      join_nodes: List[Expression]) -> Tuple[Expression, str]:
    """Rebuild the ordered NaturalJoin tree and seed the estimate memo."""
    if plan.atom is not None:
        atom = graph.atoms[plan.atom]
        estimates[id(atom.expression)] = atom.estimate
        return atom.expression, atom.label
    left_expr, left_label = _build_expression(graph, plan.left, estimates, join_nodes)
    right_expr, right_label = _build_expression(graph, plan.right, estimates, join_nodes)
    on = graph.universe(plan.left.mask) & graph.universe(plan.right.mask)
    node = NaturalJoin(left_expr, right_expr, on=on)
    estimates[id(node)] = CostEstimate(plan.cardinality, plan.cost, bound=plan.bound)
    join_nodes.append(node)
    return node, "({} ⋈ {})".format(left_label, right_label)


def order_joins(expression: Expression, cost_model: CostModel,
                mode: str = DEFAULT_JOIN_SEARCH,
                dp_threshold: int = DEFAULT_DP_THRESHOLD,
                memo: Optional[Dict] = None,
                index_probe_cost_factor: float = INDEX_PROBE_COST_FACTOR,
                tracer=None) -> Optional[JoinOrderResult]:
    """Search a join order for a nested NaturalJoin tree.

    Returns ``None`` when the tree is not reorderable (see
    :func:`extract_join_graph`) or ``mode == "none"``; otherwise a
    :class:`JoinOrderResult` whose expression is semantically equivalent to the
    input with the joins re-associated into the chosen order.

    ``tracer`` (a :class:`repro.obs.trace.Tracer` or ``None``) records the
    search as a ``join-order-search`` span carrying the report's numbers.
    """
    if mode == "none":
        return None
    if mode not in SEARCH_MODES:
        raise OptimizerError("unknown join_order_search mode {!r}; use one of {}"
                             .format(mode, "/".join(SEARCH_MODES)))
    source = cost_model.source
    graph = extract_join_graph(expression, source)
    if graph is None:
        return None

    span = (tracer.span("join-order-search", mode=mode)
            if tracer is not None else None)
    if span is not None:
        span.__enter__()
    try:
        _price_atoms(graph, cost_model, memo if memo is not None else {})

        fallback = False
        effective = mode
        if mode == "dp" and len(graph) > dp_threshold:
            effective = "greedy"
            fallback = True
        if effective == "dp":
            search = _search_dp
        elif effective == "greedy":
            search = _search_greedy
        else:
            search = _search_smallest
        plan, subsets, considered, pruned = search(graph, cost_model,
                                                   index_probe_cost_factor)
        if plan is None:
            return None

        estimates: Dict[int, CostEstimate] = {}
        join_nodes: List[Expression] = []
        ordered, order = _build_expression(graph, plan, estimates, join_nodes)
        # The original root prices identically to the reordered root, so the
        # planner's annotation of the node it was handed stays honest too.
        estimates[id(expression)] = estimates[id(ordered)]
        report = JoinSearchReport(effective, len(graph), subsets, considered, pruned,
                                  order, plan.cardinality, plan.cost,
                                  fallback=fallback)
        if span is not None:
            span.set(**report.as_dict())
        return JoinOrderResult(ordered, estimates, join_nodes, report)
    finally:
        if span is not None:
            span.__exit__(None, None, None)
