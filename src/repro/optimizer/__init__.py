"""AD-driven query optimization.

Section 3.1.2 of the paper lists two optimization opportunities opened up by
attribute dependencies:

* **redundant type guards** — a guard on attributes whose presence already follows
  from earlier selections and the declared (explicit) attribute dependencies can be
  dropped (Example 4);
* **excluded variants** — a selection on the determining attributes rules variants
  out, so joins / union branches that only contribute excluded variants can be
  pruned (the extension of qualified-relation reasoning to structural variants).

This package implements both as rewrite rules over the algebra of
:mod:`repro.algebra`, a simple cost model, and a planner that applies the rules to a
fixpoint and reports what it did.
"""

from repro.optimizer.analysis import guaranteed_present, guaranteed_absent
from repro.optimizer.analytic_rules import (
    eliminate_noop_sorts,
    push_aggregate_into_unions,
    push_aggregate_past_rename,
    push_limit_into_unions,
)
from repro.optimizer.rewrite_rules import (
    RewriteReport,
    eliminate_contradictory_selections,
    eliminate_redundant_guards,
    prune_union_branches,
)
from repro.optimizer.qualified_relations import QualifiedRelation, qualification_excludes
from repro.optimizer.cost import estimate_cost, measured_cost
from repro.optimizer.joinorder import (
    JoinGraph,
    JoinOrderResult,
    JoinSearchReport,
    extract_join_graph,
    order_joins,
)
from repro.optimizer.planner import Planner

__all__ = [
    "JoinGraph",
    "JoinOrderResult",
    "JoinSearchReport",
    "extract_join_graph",
    "order_joins",
    "guaranteed_present",
    "guaranteed_absent",
    "RewriteReport",
    "eliminate_redundant_guards",
    "eliminate_contradictory_selections",
    "eliminate_noop_sorts",
    "prune_union_branches",
    "push_aggregate_into_unions",
    "push_aggregate_past_rename",
    "push_limit_into_unions",
    "QualifiedRelation",
    "qualification_excludes",
    "estimate_cost",
    "measured_cost",
    "Planner",
]
