"""The planner: apply the AD-driven rewrites to a fixpoint.

The planner is deliberately small — the paper's point is not a full cost-based
optimizer but that attribute dependencies *enable* rewrites a scheme-only system
cannot justify.  :meth:`Planner.optimize` applies the three rewrite rules until no
rule changes the tree any more and returns the rewritten expression together with
the accumulated :class:`~repro.optimizer.rewrite_rules.RewriteReport`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.algebra.expressions import Expression
from repro.errors import OptimizerError
from repro.optimizer.analytic_rules import (
    eliminate_noop_sorts,
    push_aggregate_into_unions,
    push_aggregate_past_rename,
    push_limit_into_unions,
)
from repro.optimizer.rewrite_rules import (
    RewriteReport,
    eliminate_contradictory_selections,
    eliminate_redundant_guards,
    prune_union_branches,
)

#: the rewrite rules applied by default, in order — the AD rules first (they
#: can empty whole subtrees the analytic rules would otherwise rearrange)
DEFAULT_RULES: Tuple[Callable, ...] = (
    prune_union_branches,
    eliminate_contradictory_selections,
    eliminate_redundant_guards,
    eliminate_noop_sorts,
    push_limit_into_unions,
    push_aggregate_into_unions,
    push_aggregate_past_rename,
)


class Planner:
    """Applies dependency-aware rewrite rules to algebra expressions.

    ``catalog`` is the source of declared dependencies for base relations (any
    object with a ``dependencies(name)`` method, e.g. :class:`repro.engine.Database`,
    or a mapping).  ``rules`` may be overridden to ablate individual rewrites.
    """

    def __init__(self, catalog=None, rules: Optional[Sequence[Callable]] = None,
                 max_passes: int = 10):
        self.catalog = catalog
        self.rules = tuple(rules) if rules is not None else DEFAULT_RULES
        if max_passes < 1:
            raise OptimizerError("max_passes must be at least 1")
        self.max_passes = max_passes

    def optimize(self, expression: Expression) -> Tuple[Expression, RewriteReport]:
        """Rewrite ``expression`` to a fixpoint; returns (new expression, report)."""
        report = RewriteReport()
        current = expression
        for _ in range(self.max_passes):
            changed = False
            for rule in self.rules:
                current, rule_report = rule(current, self.catalog)
                if rule_report.changed:
                    report.merge(rule_report)
                    changed = True
            if not changed:
                break
        return current, report
