"""Cost estimation and measurement for algebra expressions.

Two notions of cost are used by the optimizer experiments:

* :func:`estimate_cost` — a static estimate based on base-relation cardinalities
  and selectivities.  When the relation source carries fresh statistics (a
  :class:`~repro.stats.StatisticsCatalog` populated by ``Database.analyze()``),
  selection, type-guard and join selectivities come from histograms, most-common
  values and variant-tag frequency tables; without statistics the model degrades
  to the classic default constants.  The physical planner uses the estimates to
  pick join algorithms and build sides; the rewrite planner to confirm that a
  rewrite does not increase the estimated work.
* :func:`measured_cost` — the exact work counters gathered by actually evaluating
  the expression with :class:`repro.algebra.Evaluator`.  The benchmarks report this
  machine-independent number alongside wall-clock time.

**How the estimates are derived.**  Every node receives a
:class:`CostEstimate` with three components:

* ``cardinality`` — base relations report their exact row count; a
  selection/guard chain over one base relation is combined into a *single*
  conjunction and priced against that table's statistics in one step
  (comparisons from histograms and exact most-common-value counts, type
  guards from the variant-tag frequency table, joint attribute *presence*
  charged exactly once even when a guard and a comparison require the same
  attribute); a natural join prices as ``|L| · |R| · sel`` with ``sel`` the
  per-attribute NDV overlap ``1/max(ndv_L, ndv_R)`` times both sides'
  tag-frequency of carrying the join attributes (tuples lacking one can never
  join).  Reshaping operators (projection, extension, rename) pass
  cardinality through; unions add, difference keeps its left input.
* ``work`` — cumulative: children's work plus this node's own (one unit per
  input tuple for selections/guards/reshaping — scaled by
  :data:`ROW_TUPLE_COST` or :data:`VECTORIZED_TUPLE_COST` depending on the
  execution mode being priced — and the examined pair count for joins).
* ``bound`` — a *hard* cardinality upper bound (selections only shrink their
  input, a join can at most pair everything).  Decisions that are
  catastrophic when an estimate is too low — choosing a nested-loop join —
  consult the bound, never the estimate.

Without fresh statistics every selectivity falls back to the default
constants (:data:`DEFAULT_SELECTIVITY`, :data:`DEFAULT_GUARD_SELECTIVITY`),
so the model degrades gracefully rather than failing.  The n-way join-order
search of :mod:`repro.optimizer.joinorder` builds on these same primitives —
atom estimates from this model, edge selectivities from
:func:`repro.stats.statistics.join_selectivity` — and seeds its per-subset
cardinalities back into the physical planner's memo, because this model alone
cannot price composed joins (it has no base statistics for intermediate
results).

The statistics-aware logic lives in :class:`CostModel`; :func:`estimate_cost`
remains the convenience wrapper every existing caller uses.  The full
constant reference lives in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from math import log2
from typing import Dict, Optional

from repro.algebra.evaluator import Evaluator, ExecutionStats
from repro.algebra.expressions import (
    Aggregate,
    Difference,
    EmptyRelation,
    Expression,
    Extension,
    Limit,
    MultiwayJoin,
    NaturalJoin,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Sort,
    SubqueryExtension,
    TypeGuardNode,
    Union,
)
from repro.algebra.predicates import And, FalsePredicate, PresencePredicate
from repro.errors import OptimizerError, ReproError
from repro.model.attributes import attrset
from repro.obs.feedback import (
    attribute_carriers,
    expression_key,
    referenced_tables,
)
from repro.stats.statistics import TableStatistics, join_selectivity

#: default fraction of tuples surviving a selection when nothing better is known
DEFAULT_SELECTIVITY = 0.5
#: default fraction of tuples surviving a type guard
DEFAULT_GUARD_SELECTIVITY = 0.8

#: assumed average tuple width (attributes per tuple) when neither statistics
#: nor a declared scheme can answer
DEFAULT_TUPLE_WIDTH = 8.0

#: default fraction of input tuples that form distinct groups when neither
#: variant-tag frequencies nor NDVs are available to estimate a group count
DEFAULT_GROUP_FRACTION = 0.1

#: relative per-tuple cost of interpreted (row-at-a-time) operator work
ROW_TUPLE_COST = 1.0
#: relative per-tuple cost in vectorized operators: compiled predicates and
#: bulk counter updates amortize interpreter overhead across a batch, so one
#: tuple of selection/guard/reshaping work is ~4× cheaper than in row mode
VECTORIZED_TUPLE_COST = 0.25


class CostEstimate:
    """Estimated output cardinality and cumulative work of an expression.

    ``bound`` is a *hard upper bound* on the output cardinality (selections can
    only shrink their input, a join can at most pair everything).  Decisions that
    are catastrophic when an estimate is too low — choosing a nested-loop join —
    consult the bound instead of the estimate.
    """

    def __init__(self, cardinality: float, work: float, bound: Optional[float] = None):
        self.cardinality = cardinality
        self.work = work
        self.bound = cardinality if bound is None else bound

    def __repr__(self) -> str:
        return "CostEstimate(cardinality={:.1f}, work={:.1f}, bound={:.1f})".format(
            self.cardinality, self.work, self.bound)


def _base_cardinality(source, name: str) -> int:
    if source is None:
        return 0
    if hasattr(source, "relation"):
        try:
            relation = source.relation(name)
        except ReproError:
            # An estimator should degrade gracefully on unknown names; the evaluator
            # is the component that reports them as hard errors.
            relation = None
    elif isinstance(source, dict):
        relation = source.get(name)
    else:
        relation = None
    if relation is None:
        return 0
    try:
        return len(relation)
    except TypeError:
        return 0


class CostModel:
    """Statistics-aware cardinality and work estimation.

    ``statistics`` is a :class:`~repro.stats.StatisticsCatalog` (or anything with
    a ``get(name) -> TableStatistics-or-None`` method).  When omitted, it is taken
    from ``source.statistics`` — a :class:`~repro.engine.Database` carries one —
    so a freshly analyzed database automatically estimates from its data.  Every
    lookup happens per estimate, hence stale statistics (``get`` returning
    ``None``) transparently fall back to the default constants.
    """

    def __init__(self, source=None, statistics=None, vectorized: bool = False,
                 feedback=None):
        self.source = source
        if statistics is None:
            statistics = getattr(source, "statistics", None)
        self.statistics = statistics
        #: the engine's :class:`~repro.obs.feedback.CardinalityFeedback` store
        #: (taken from the source when omitted, as with statistics): observed
        #: cardinalities take precedence over histogram/NDV estimation
        if feedback is None:
            feedback = getattr(source, "cardinality_feedback", None)
        self.feedback = feedback
        #: per-tuple work factor for selection/guard/reshaping nodes; the
        #: vectorized engine pays less interpreter overhead per tuple
        self.tuple_cost = VECTORIZED_TUPLE_COST if vectorized else ROW_TUPLE_COST

    def set_vectorized(self, vectorized: bool) -> None:
        """Re-point the per-tuple work factor at the given execution mode (the
        physical planner calls this per plan, so per-call mode overrides are
        priced with the right constants)."""
        self.tuple_cost = VECTORIZED_TUPLE_COST if vectorized else ROW_TUPLE_COST

    # -- statistics access ---------------------------------------------------------------

    def table_statistics(self, name: str) -> Optional[TableStatistics]:
        """Fresh statistics for a base relation, or ``None``."""
        if self.statistics is None:
            return None
        getter = getattr(self.statistics, "get", None)
        if getter is None:
            return None
        return getter(name)

    def base_statistics(self, expression: Expression) -> Optional[TableStatistics]:
        """Statistics of the single base relation feeding ``expression``.

        Walks through the operators that keep predicates meaningful against the
        base table's attribute space (selection, guard, projection); any other
        shape — joins, unions, renames — yields ``None`` and the default
        constants apply.
        """
        node = expression
        while isinstance(node, (Selection, TypeGuardNode, Projection)):
            node = node.children[0]
        if isinstance(node, RelationRef):
            return self.table_statistics(node.name)
        return None

    # -- estimation ----------------------------------------------------------------------

    def estimate(self, expression: Expression,
                 _memo: Optional[Dict[int, CostEstimate]] = None) -> CostEstimate:
        """Recursively estimate output cardinality and total work of ``expression``.

        Precedence order: an **observed** cardinality from the feedback store
        (recorded by a previous execution of the same subexpression under the
        current statistics version) overrides whatever the histogram/NDV math
        below derived; the structural hard ``bound`` still caps it.  Base
        relations are excluded — their live row count is already exact.
        """
        memo: Dict[int, CostEstimate] = _memo if _memo is not None else {}
        cached = memo.get(id(expression))
        if cached is not None:
            return cached
        estimate = self._estimate(expression, memo)
        observed = self._observed_cardinality(expression)
        if observed is not None and float(observed) != estimate.cardinality:
            estimate = CostEstimate(min(float(observed), estimate.bound),
                                    estimate.work, bound=estimate.bound)
        memo[id(expression)] = estimate
        return estimate

    def _observed_cardinality(self, expression: Expression):
        """The feedback store's observation for this subexpression, if any."""
        feedback = self.feedback
        if feedback is None or not len(feedback):
            return None
        if isinstance(expression, (RelationRef, EmptyRelation)):
            return None
        version = getattr(self.statistics, "version", None)
        if version is None:
            return None
        return feedback.lookup(expression_key(expression), version)

    def _estimate(self, expression: Expression, memo: Dict[int, CostEstimate]) -> CostEstimate:
        if isinstance(expression, EmptyRelation):
            return CostEstimate(0.0, 0.0)
        if isinstance(expression, RelationRef):
            cardinality = _base_cardinality(self.source, expression.name)
            return CostEstimate(cardinality, cardinality)
        if isinstance(expression, Selection):
            child = self.estimate(expression.child, memo)
            if isinstance(expression.predicate, FalsePredicate):
                return CostEstimate(0.0, child.work, bound=0.0)
            cardinality = self._chain_cardinality(expression)
            if cardinality is None:
                cardinality = child.cardinality * DEFAULT_SELECTIVITY
            return CostEstimate(min(cardinality, child.bound),
                                child.work + child.cardinality * self.tuple_cost,
                                bound=child.bound)
        if isinstance(expression, TypeGuardNode):
            child = self.estimate(expression.child, memo)
            cardinality = self._chain_cardinality(expression)
            if cardinality is None:
                cardinality = child.cardinality * DEFAULT_GUARD_SELECTIVITY
            return CostEstimate(min(cardinality, child.bound),
                                child.work + child.cardinality * self.tuple_cost,
                                bound=child.bound)
        if isinstance(expression, (Projection, Extension, Rename)):
            child = self.estimate(expression.children[0], memo)
            return CostEstimate(child.cardinality,
                                child.work + child.cardinality * self.tuple_cost,
                                bound=child.bound)
        if isinstance(expression, (Product, NaturalJoin)):
            left = self.estimate(expression.children[0], memo)
            right = self.estimate(expression.children[1], memo)
            pairs = left.cardinality * right.cardinality
            if isinstance(expression, Product):
                cardinality = pairs
            else:
                cardinality = pairs * self._join_selectivity(expression)
            return CostEstimate(cardinality, left.work + right.work + pairs,
                                bound=left.bound * right.bound)
        if isinstance(expression, MultiwayJoin):
            estimates = [self.estimate(child, memo) for child in expression.children]
            work = sum(e.work for e in estimates)
            cardinality = estimates[0].cardinality
            bound = estimates[0].bound
            for estimate in estimates[1:]:
                work += cardinality
                cardinality = max(cardinality, estimate.cardinality)
                bound *= max(1.0, estimate.bound)
            return CostEstimate(cardinality, work, bound=bound)
        if isinstance(expression, Union):
            left = self.estimate(expression.children[0], memo)
            right = self.estimate(expression.children[1], memo)
            return CostEstimate(left.cardinality + right.cardinality,
                                left.work + right.work + left.cardinality + right.cardinality,
                                bound=left.bound + right.bound)
        if isinstance(expression, Difference):
            left = self.estimate(expression.children[0], memo)
            right = self.estimate(expression.children[1], memo)
            return CostEstimate(left.cardinality, left.work + right.work + left.cardinality,
                                bound=left.bound)
        if isinstance(expression, Aggregate):
            child = self.estimate(expression.child, memo)
            bound = child.bound if expression.group_by else 1.0
            groups = self._group_count(expression, child)
            return CostEstimate(min(groups, bound),
                                child.work + child.cardinality * self.tuple_cost,
                                bound=bound)
        if isinstance(expression, Sort):
            child = self.estimate(expression.child, memo)
            n = max(child.cardinality, 1.0)
            return CostEstimate(child.cardinality,
                                child.work + child.cardinality * log2(max(n, 2.0))
                                * self.tuple_cost,
                                bound=child.bound)
        if isinstance(expression, Limit):
            # The planner fuses Limit(Sort(E)) into one top-k operator, so
            # price the fused pair off the sort's input: per input tuple the
            # cheaper of a k-bounded heap push and a full-sort comparison.
            k = float(expression.count)
            inner = expression.child
            base = self.estimate(inner.child if isinstance(inner, Sort) else inner,
                                 memo)
            n = max(base.cardinality, 1.0)
            per_tuple = min(log2(max(k, 2.0)), log2(max(n, 2.0)))
            return CostEstimate(min(k, base.cardinality),
                                base.work + base.cardinality * per_tuple
                                * self.tuple_cost,
                                bound=min(k, base.bound))
        if isinstance(expression, SubqueryExtension):
            child = self.estimate(expression.child, memo)
            subquery = self.estimate(expression.subquery, memo)
            return CostEstimate(child.cardinality,
                                child.work + subquery.work
                                + child.cardinality * self.tuple_cost,
                                bound=child.bound)
        raise OptimizerError("cannot estimate cost of {!r}".format(expression))

    def _group_count(self, expression: Aggregate, child: CostEstimate) -> float:
        """Estimated number of groups, from variant-tag frequencies and NDVs.

        Flexible relations give a sharper estimate than the classic NDV
        product: the variant-tag frequency table says which *subset* of the
        group-by attributes each tuple actually carries, and tuples carrying
        different subsets can never share a group (absent routes to ⊥ per
        attribute).  So the estimate sums per presence-pattern: each pattern
        contributes at most the NDV product over its *present* group
        attributes (1 for the all-⊥ pattern), capped by the pattern's own row
        count scaled to the estimated input cardinality.
        """
        names = expression.group_by
        if not names:
            return 1.0
        statistics = self.base_statistics(expression.child)
        if statistics is None or not statistics.row_count:
            return max(1.0, child.cardinality * DEFAULT_GROUP_FRACTION)
        fraction = min(1.0, child.cardinality / float(statistics.row_count))
        group_set = set(names)
        patterns: Dict[frozenset, int] = {}
        for combination, count in statistics.variant_counts.items():
            pattern = frozenset(combination) & group_set
            patterns[pattern] = patterns.get(pattern, 0) + count
        if not patterns:
            return max(1.0, child.cardinality * DEFAULT_GROUP_FRACTION)
        groups = 0.0
        for pattern, count in patterns.items():
            distinct = 1.0
            for name in pattern:
                distinct *= float(max(1, statistics.ndv(name)))
            groups += min(count * fraction, distinct)
        return max(1.0, min(groups, child.cardinality))

    def _chain_cardinality(self, expression: Expression) -> Optional[float]:
        """Statistics-based output cardinality of a selection/guard chain.

        The whole chain of selections and type guards down to the base relation
        is combined into one conjunction and estimated against the base table in
        a single step, so shared presence requirements (a guard plus a
        comparison on the same attribute, correlated variant attributes) are
        priced once instead of once per node.  ``None`` when the chain does not
        end in a base relation with fresh statistics.
        """
        parts = []
        node = expression
        while isinstance(node, (Selection, TypeGuardNode, Projection)):
            if isinstance(node, Selection):
                parts.append(node.predicate)
            elif isinstance(node, TypeGuardNode):
                parts.append(PresencePredicate(node.attributes))
            node = node.children[0]
        if not isinstance(node, RelationRef):
            return None
        statistics = self.table_statistics(node.name)
        if statistics is None:
            return None
        combined = parts[0] if len(parts) == 1 else And(*parts)
        return _base_cardinality(self.source, node.name) * statistics.selectivity(combined)

    def estimate_width(self, expression: Expression) -> float:
        """Estimated average tuple width (attribute count) of the result.

        Base relations answer from the variant-tag frequency table of their
        fresh statistics (the *actual* average attributes per tuple, which for
        variant records is well below the universe size), falling back to the
        declared scheme's attribute universe and finally to
        :data:`DEFAULT_TUPLE_WIDTH`.  Joins add their input widths minus the
        shared join attributes; reshaping operators adjust by what they add or
        drop.  The physical planner feeds this into the adaptive batch-size
        decision — wide tuples get smaller batches.
        """
        if isinstance(expression, EmptyRelation):
            return 0.0
        if isinstance(expression, RelationRef):
            statistics = self.table_statistics(expression.name)
            if statistics is not None:
                width = statistics.average_width()
                if width > 0.0:
                    return width
            declared = self._declared_width(expression.name)
            return declared if declared else DEFAULT_TUPLE_WIDTH
        if isinstance(expression, (Selection, TypeGuardNode)):
            return self.estimate_width(expression.child)
        if isinstance(expression, Projection):
            return min(self.estimate_width(expression.child),
                       float(len(expression.attributes)))
        if isinstance(expression, Extension):
            return self.estimate_width(expression.child) + 1.0
        if isinstance(expression, Rename):
            return self.estimate_width(expression.child)
        if isinstance(expression, NaturalJoin):
            width = (self.estimate_width(expression.left)
                     + self.estimate_width(expression.right))
            if expression.on is not None:
                width -= float(len(expression.on))
            return max(width, 1.0)
        if isinstance(expression, Product):
            return (self.estimate_width(expression.left)
                    + self.estimate_width(expression.right))
        if isinstance(expression, MultiwayJoin):
            width = sum(self.estimate_width(child) for child in expression.children)
            width -= float(len(expression.on) * (len(expression.children) - 1))
            return max(width, 1.0)
        if isinstance(expression, (Union,)):
            return max(self.estimate_width(child) for child in expression.children)
        if isinstance(expression, Difference):
            return self.estimate_width(expression.children[0])
        if isinstance(expression, Aggregate):
            return float(len(expression.group_by) + len(expression.specs))
        if isinstance(expression, (Sort, Limit)):
            return self.estimate_width(expression.child)
        if isinstance(expression, SubqueryExtension):
            return self.estimate_width(expression.child) + 1.0
        return DEFAULT_TUPLE_WIDTH

    def _declared_width(self, name: str) -> Optional[float]:
        """The attribute-universe size of a base relation's declared scheme."""
        if self.source is None:
            return None
        relation = None
        if hasattr(self.source, "relation"):
            try:
                relation = self.source.relation(name)
            except Exception:
                return None
        elif isinstance(self.source, dict):
            relation = self.source.get(name)
        if relation is None:
            return None
        definition = getattr(relation, "definition", None)
        scheme = getattr(definition, "scheme", None) or getattr(relation, "scheme", None)
        attributes = getattr(scheme, "attributes", None)
        if attributes is None:
            return None
        try:
            return float(len(attrset(attributes)))
        except Exception:
            return None

    def _join_selectivity(self, expression: NaturalJoin) -> float:
        """Selectivity of a natural join over the pair count.

        Precedence per join attribute: an **observed** edge selectivity from
        the feedback store (recorded off an executed mis-estimated join over
        the same attribute and carrier tables) beats the NDV-overlap estimate;
        statistics answer for the rest; any attribute neither can price drops
        the whole join to :data:`DEFAULT_SELECTIVITY`.
        """
        left_stats = self.base_statistics(expression.left)
        right_stats = self.base_statistics(expression.right)
        if expression.on is not None:
            attributes = [a.name for a in expression.on]
        elif left_stats is not None and right_stats is not None:
            # The natural-join attributes are data-dependent; the observed
            # attribute universes of both sides predict them.
            attributes = sorted(set(left_stats.attribute_names())
                                & set(right_stats.attribute_names()))
            if not attributes:
                # Disjoint attribute spaces degenerate to a cartesian product.
                return 1.0
        else:
            return DEFAULT_SELECTIVITY
        selectivity = 1.0
        for name in attributes:
            observed = self._observed_edge_selectivity(expression, name)
            if observed is not None:
                selectivity *= observed
            elif left_stats is not None and right_stats is not None:
                selectivity *= join_selectivity(left_stats, right_stats, [name])
            else:
                return DEFAULT_SELECTIVITY
        return selectivity

    def _observed_edge_selectivity(self, expression: NaturalJoin,
                                   name: str) -> Optional[float]:
        """The feedback store's observed selectivity for one join attribute."""
        feedback = self.feedback
        if feedback is None or not len(feedback):
            return None
        version = getattr(self.statistics, "version", None)
        if version is None:
            return None
        tables = (referenced_tables(expression.left)
                  | referenced_tables(expression.right))
        carriers = attribute_carriers(self.source, tables, name)
        if not carriers:
            return None
        return feedback.lookup_edge(name, carriers, version)


def estimate_cost(expression: Expression, source=None, statistics=None) -> CostEstimate:
    """Estimate output cardinality and total work of an expression.

    Convenience wrapper over :class:`CostModel`; see there for how ``statistics``
    is resolved when omitted.
    """
    return CostModel(source, statistics=statistics).estimate(expression)


def measured_cost(expression: Expression, source) -> ExecutionStats:
    """Evaluate the expression and return the exact work counters."""
    evaluator = Evaluator(source)
    return evaluator.evaluate(expression).stats
