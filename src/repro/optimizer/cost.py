"""Cost estimation and measurement for algebra expressions.

Two notions of cost are used by the optimizer experiments:

* :func:`estimate_cost` — a cheap static estimate based on base-relation
  cardinalities and default selectivities.  The planner uses it to confirm that a
  rewrite does not increase the estimated work.
* :func:`measured_cost` — the exact work counters gathered by actually evaluating
  the expression with :class:`repro.algebra.Evaluator`.  The benchmarks report this
  machine-independent number alongside wall-clock time.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.algebra.evaluator import Evaluator, ExecutionStats
from repro.algebra.expressions import (
    Difference,
    EmptyRelation,
    Expression,
    Extension,
    MultiwayJoin,
    NaturalJoin,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    TypeGuardNode,
    Union,
)
from repro.algebra.predicates import FalsePredicate
from repro.errors import OptimizerError, ReproError

#: default fraction of tuples surviving a selection when nothing better is known
DEFAULT_SELECTIVITY = 0.5
#: default fraction of tuples surviving a type guard
DEFAULT_GUARD_SELECTIVITY = 0.8


class CostEstimate:
    """Estimated output cardinality and cumulative work of an expression."""

    def __init__(self, cardinality: float, work: float):
        self.cardinality = cardinality
        self.work = work

    def __repr__(self) -> str:
        return "CostEstimate(cardinality={:.1f}, work={:.1f})".format(self.cardinality, self.work)


def _base_cardinality(source, name: str) -> int:
    if source is None:
        return 0
    if hasattr(source, "relation"):
        try:
            relation = source.relation(name)
        except ReproError:
            # An estimator should degrade gracefully on unknown names; the evaluator
            # is the component that reports them as hard errors.
            relation = None
    elif isinstance(source, dict):
        relation = source.get(name)
    else:
        relation = None
    if relation is None:
        return 0
    try:
        return len(relation)
    except TypeError:
        return 0


def estimate_cost(expression: Expression, source=None) -> CostEstimate:
    """Recursively estimate output cardinality and total work of an expression."""
    if isinstance(expression, EmptyRelation):
        return CostEstimate(0.0, 0.0)
    if isinstance(expression, RelationRef):
        cardinality = _base_cardinality(source, expression.name)
        return CostEstimate(cardinality, cardinality)
    if isinstance(expression, Selection):
        child = estimate_cost(expression.child, source)
        if isinstance(expression.predicate, FalsePredicate):
            return CostEstimate(0.0, child.work)
        return CostEstimate(child.cardinality * DEFAULT_SELECTIVITY, child.work + child.cardinality)
    if isinstance(expression, TypeGuardNode):
        child = estimate_cost(expression.child, source)
        return CostEstimate(child.cardinality * DEFAULT_GUARD_SELECTIVITY,
                            child.work + child.cardinality)
    if isinstance(expression, (Projection, Extension, Rename)):
        child = estimate_cost(expression.children[0], source)
        return CostEstimate(child.cardinality, child.work + child.cardinality)
    if isinstance(expression, (Product, NaturalJoin)):
        left = estimate_cost(expression.children[0], source)
        right = estimate_cost(expression.children[1], source)
        pairs = left.cardinality * right.cardinality
        cardinality = pairs if isinstance(expression, Product) else pairs * DEFAULT_SELECTIVITY
        return CostEstimate(cardinality, left.work + right.work + pairs)
    if isinstance(expression, MultiwayJoin):
        estimates = [estimate_cost(child, source) for child in expression.children]
        work = sum(e.work for e in estimates)
        cardinality = estimates[0].cardinality
        for estimate in estimates[1:]:
            work += cardinality
            cardinality = max(cardinality, estimate.cardinality)
        return CostEstimate(cardinality, work)
    if isinstance(expression, Union):
        left = estimate_cost(expression.children[0], source)
        right = estimate_cost(expression.children[1], source)
        return CostEstimate(left.cardinality + right.cardinality,
                            left.work + right.work + left.cardinality + right.cardinality)
    if isinstance(expression, Difference):
        left = estimate_cost(expression.children[0], source)
        right = estimate_cost(expression.children[1], source)
        return CostEstimate(left.cardinality, left.work + right.work + left.cardinality)
    raise OptimizerError("cannot estimate cost of {!r}".format(expression))


def measured_cost(expression: Expression, source) -> ExecutionStats:
    """Evaluate the expression and return the exact work counters."""
    evaluator = Evaluator(source)
    return evaluator.evaluate(expression).stats
