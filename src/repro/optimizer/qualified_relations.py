"""Qualified relations extended to structural variants.

Ceri & Pelagatti use *qualified relations* — a relation paired with a predicate that
every tuple satisfies — to extend algebraic equivalences to (horizontally)
decomposed relations.  Section 3.1.2 of the paper observes that "a relation together
with an AD is an extension of a qualified relation to support structural variants":
the qualification not only fixes the values of the determining attributes of a
fragment but, through the dependency, also fixes the fragment's *shape*.

The class below pairs a relation (or fragment name) with its qualification and the
attribute set its tuples carry; :func:`qualification_excludes` is the test that the
union-branch pruning rewrite and the decomposition benchmarks rely on.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.algebra.expressions import Expression, RelationRef, Selection
from repro.algebra.predicates import Predicate
from repro.model.attributes import AttributeSet, attrset


class QualifiedRelation:
    """A relation fragment together with its qualification.

    ``qualification`` maps determining attribute names to the constant values every
    tuple of the fragment carries; ``attributes`` is the attribute set of the
    fragment's tuples (the variant's shape).
    """

    def __init__(self, name: str, qualification: Dict[str, object], attributes=None):
        self.name = name
        self.qualification = dict(qualification)
        self.attributes = attrset(attributes) if attributes is not None else None

    def excludes(self, equalities: Dict[str, object]) -> bool:
        """``True`` when a selection binding ``equalities`` cannot match this fragment."""
        return qualification_excludes(self.qualification, equalities)

    def to_expression(self) -> Expression:
        """A base-relation reference for this fragment."""
        return RelationRef(self.name)

    def __repr__(self) -> str:
        return "QualifiedRelation({!r}, {!r}, attributes={})".format(
            self.name, self.qualification, self.attributes
        )


def qualification_excludes(qualification: Dict[str, object], equalities: Dict[str, object]) -> bool:
    """A qualification excludes a selection when they bind a shared attribute differently."""
    for name, value in equalities.items():
        if name in qualification and qualification[name] != value:
            return True
    return False


def relevant_fragments(fragments, equalities: Dict[str, object]):
    """The fragments of a horizontal decomposition a selection still has to visit."""
    return [fragment for fragment in fragments if not fragment.excludes(equalities)]
