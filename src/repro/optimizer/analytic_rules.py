"""Rewrite rules for the analytic operators (aggregation, ordering, top-k).

Four rules, same shape as :mod:`repro.optimizer.rewrite_rules` (pure function
from tree to rewritten tree plus a :class:`RewriteReport`):

* :func:`eliminate_noop_sorts` — a sort feeding an aggregate (or another sort)
  contributes nothing to a set-semantics result and is dropped.
* :func:`push_limit_into_unions` — ``λ_k`` over a union pre-prunes each branch
  to its own top-k: the global top-k of ``A ∪ B`` is a subset of the union of
  the per-branch top-ks (fewer than ``k`` rows of the union — hence of the
  branch — precede any row it retains), so the outer limit re-selecting from
  ``≤ 2k`` rows is sound.  Works for the bare (canonical-order) limit and the
  ``λ_k ∘ τ`` pair, whose sort keys travel into the branches.
* :func:`push_aggregate_into_unions` — γ over a union computes per-branch
  partial aggregates first, **only** when every spec is ``min``/``max``: those
  are idempotent, so the deduplication a set union applies to colliding partial
  rows cannot change the re-aggregated result (``sum``/``count``/``avg`` would
  need disjointness the rewriter cannot prove).  Variant routing composes: a
  branch's ⊥-group row omits the group attribute and is routed to the outer
  ⊥ group again, and an "attribute never present" partial stays absent through
  both levels.
* :func:`push_aggregate_past_rename` — γ over ``ρ_m(π_X(E))`` aggregates the
  projection directly and renames only the (far fewer) group rows, when ``m``
  is injective on ``X`` (no tuple collapse) and every attribute the aggregate
  reads has a preimage.  Renames of attributes the aggregate never reads
  disappear entirely — their targets cannot occur in the output.

Every rule carries a termination guard (the :class:`~repro.optimizer.planner.Planner`
runs rules to a fixpoint): the pushed forms are recognized and skipped.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.algebra.analytic import AggregateSpec
from repro.algebra.expressions import (
    Aggregate,
    Expression,
    Limit,
    Projection,
    Rename,
    Sort,
    Union,
)
from repro.optimizer.rewrite_rules import RewriteReport, _rewrite_bottom_up

#: the min/max subset of aggregate functions — idempotent, hence sound to
#: compute per union branch and re-aggregate despite set deduplication
IDEMPOTENT_FUNCS = ("min", "max")


def eliminate_noop_sorts(expression: Expression, catalog=None) -> Tuple[Expression, RewriteReport]:
    """Drop sorts whose ordering cannot be observed (under γ or another τ)."""
    report = RewriteReport()

    def visit(node: Expression) -> Tuple[Expression, Optional[str]]:
        if isinstance(node, Aggregate) and isinstance(node.child, Sort):
            return (Aggregate(node.child.child, node.group_by, node.specs),
                    "removed the sort below an aggregate (ordering is not observable)")
        if isinstance(node, Sort) and isinstance(node.child, Sort):
            return (Sort(node.child.child, node.keys),
                    "collapsed consecutive sorts (the outer ordering wins)")
        return node, None

    return _rewrite_bottom_up(expression, visit, report), report


def _branch_limited(branch: Expression, count: int, keys: Tuple) -> bool:
    """Is ``branch`` already pruned to ``≤ count`` rows under ``keys``?"""
    if not isinstance(branch, Limit) or branch.count > count:
        return False
    if not keys:
        return True
    return isinstance(branch.child, Sort) and branch.child.keys == keys


def push_limit_into_unions(expression: Expression, catalog=None) -> Tuple[Expression, RewriteReport]:
    """``λ_k(A ∪ B)`` → ``λ_k(λ_k(A) ∪ λ_k(B))`` (sort keys travel along)."""
    report = RewriteReport()

    def visit(node: Expression) -> Tuple[Expression, Optional[str]]:
        if not isinstance(node, Limit):
            return node, None
        child = node.child
        if isinstance(child, Sort):
            keys = child.keys
            union = child.child
        else:
            keys = ()
            union = child
        if not isinstance(union, Union):
            return node, None
        count = node.count
        if (_branch_limited(union.left, count, keys)
                and _branch_limited(union.right, count, keys)):
            return node, None  # already pushed — fixpoint guard
        def prune(branch: Expression) -> Expression:
            pruned = Sort(branch, keys) if keys else branch
            return Limit(pruned, count)
        pushed = Union(prune(union.left), prune(union.right))
        if keys:
            pushed = Sort(pushed, keys)
        return (Limit(pushed, count),
                "pushed limit {} into both union branches{}".format(
                    count, " (keys {})".format(
                        ", ".join(repr(key) for key in keys)) if keys else ""))

    return _rewrite_bottom_up(expression, visit, report), report


def push_aggregate_into_unions(expression: Expression, catalog=None) -> Tuple[Expression, RewriteReport]:
    """``γ(A ∪ B)`` → ``γ'(γ(A) ∪ γ(B))`` when every spec is min/max."""
    report = RewriteReport()

    def visit(node: Expression) -> Tuple[Expression, Optional[str]]:
        if not isinstance(node, Aggregate) or not isinstance(node.child, Union):
            return node, None
        if not node.specs or any(spec.func not in IDEMPOTENT_FUNCS
                                 for spec in node.specs):
            return node, None
        union = node.child
        group_by = node.group_by
        if all(isinstance(branch, Aggregate) and branch.group_by == group_by
               for branch in (union.left, union.right)):
            return node, None  # already pushed — fixpoint guard
        partial = Union(Aggregate(union.left, group_by, node.specs),
                        Aggregate(union.right, group_by, node.specs))
        refold = tuple(AggregateSpec(spec.func, spec.output, spec.output)
                       for spec in node.specs)
        return (Aggregate(partial, group_by, refold),
                "pushed min/max aggregation into both union branches")

    return _rewrite_bottom_up(expression, visit, report), report


def push_aggregate_past_rename(expression: Expression, catalog=None) -> Tuple[Expression, RewriteReport]:
    """``γ_{G}(ρ_m(π_X(E)))`` → ``ρ_{m|G}(γ_{G'}(π_X(E)))`` when sound.

    Requires the rename to be injective on the projection's attribute universe
    ``X`` (so no tuples collapse and the rewrite is a bijection on rows) and
    every attribute the aggregate reads to come from ``X``.  Only the group
    attributes still need renaming afterwards; spec outputs keep their names,
    so any collision between an output name and a group name (either side of
    the mapping) vetoes the rewrite.
    """
    report = RewriteReport()

    def visit(node: Expression) -> Tuple[Expression, Optional[str]]:
        if not isinstance(node, Aggregate) or not isinstance(node.child, Rename):
            return node, None
        rename = node.child
        if not isinstance(rename.child, Projection):
            return node, None
        names = {attribute.name for attribute in rename.child.attributes}
        forward = {name: rename.mapping.get(name, name) for name in names}
        if len(set(forward.values())) != len(forward):
            return node, None  # not injective on X — tuples may collapse
        preimage = {new: old for old, new in forward.items()}
        read = list(node.group_by) + [spec.attribute for spec in node.specs
                                      if spec.attribute is not None]
        if any(name not in preimage for name in read):
            return node, None  # reads an attribute the rename did not produce
        inner_groups = tuple(preimage[name] for name in node.group_by)
        outputs = {spec.output for spec in node.specs}
        if outputs & (set(inner_groups) | set(node.group_by)):
            return node, None  # output name would collide with a group name
        inner_specs = tuple(
            AggregateSpec(spec.func,
                          None if spec.attribute is None else preimage[spec.attribute],
                          spec.output)
            for spec in node.specs)
        pushed = Aggregate(rename.child, inner_groups, inner_specs)
        outer_mapping = {old: new for old, new in zip(inner_groups, node.group_by)
                         if old != new}
        if not outer_mapping:
            return pushed, "dropped the rename below an aggregate (no read attribute renamed)"
        return (Rename(pushed, outer_mapping),
                "pushed aggregation past the rename (now renames {} group rows, "
                "not the input)".format(len(node.group_by)))

    return _rewrite_bottom_up(expression, visit, report), report
