"""Enhanced-ER vocabulary: entity types and predicate-defined specializations.

Only the constructs the paper discusses are modelled:

* an :class:`EntityType` with attributes, their domains and a key;
* a :class:`Specialization` of an entity type that is *predicate defined*: each
  subclass is selected by the values of one or more determining attributes of the
  entity itself, and contributes additional (local) attributes.

The classification into disjoint vs. overlapping and total vs. partial subclasses is
computed from the specialization (and the determining attributes' domains), exactly
as the paper infers it from the corresponding attribute dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.model.attributes import AttributeSet, attrset
from repro.model.domains import AnyDomain, Domain, cross_product


class EntityType:
    """An entity type: named attributes with domains and an optional key."""

    def __init__(self, name: str, attributes: Mapping[str, Domain], key=None):
        if not name:
            raise ReproError("an entity type needs a name")
        if not attributes:
            raise ReproError("an entity type needs at least one attribute")
        self.name = name
        self.domains: Dict[str, Domain] = {
            attr: (domain if isinstance(domain, Domain) else AnyDomain())
            for attr, domain in attributes.items()
        }
        self.key: Optional[AttributeSet] = attrset(key) if key is not None else None
        if self.key is not None and not self.key.issubset(self.attributes):
            raise ReproError(
                "key {} of entity {!r} uses unknown attributes".format(self.key, name)
            )

    @property
    def attributes(self) -> AttributeSet:
        return attrset(self.domains.keys())

    def __repr__(self) -> str:
        return "EntityType({!r}, attributes={}, key={})".format(self.name, self.attributes, self.key)


class SpecializationSubclass:
    """One subclass of a predicate-defined specialization.

    ``predicate_values`` is the extension ``V_i`` of the defining predicate: the
    values of the determining attributes selecting this subclass (a single mapping or
    a list of mappings).  ``local_attributes`` are the attributes the subclass adds,
    with their domains.
    """

    def __init__(self, name: str, predicate_values, local_attributes: Mapping[str, Domain]):
        if not name:
            raise ReproError("a subclass needs a name")
        if isinstance(predicate_values, Mapping):
            predicate_values = [predicate_values]
        self.name = name
        self.predicate_values: List[Dict[str, object]] = [dict(v) for v in predicate_values]
        if not self.predicate_values:
            raise ReproError("subclass {!r} needs at least one predicate value".format(name))
        self.local_domains: Dict[str, Domain] = {
            attr: (domain if isinstance(domain, Domain) else AnyDomain())
            for attr, domain in local_attributes.items()
        }

    @property
    def local_attributes(self) -> AttributeSet:
        return attrset(self.local_domains.keys())

    def __repr__(self) -> str:
        return "SpecializationSubclass({!r}, values={}, attributes={})".format(
            self.name, self.predicate_values, self.local_attributes
        )


class Specialization:
    """A predicate-defined specialization of an entity type."""

    def __init__(self, entity: EntityType, determining_attributes,
                 subclasses: Sequence[SpecializationSubclass], name: Optional[str] = None):
        self.entity = entity
        self.determining_attributes = attrset(determining_attributes)
        if not self.determining_attributes.issubset(entity.attributes):
            raise ReproError(
                "determining attributes {} are not attributes of entity {!r}".format(
                    self.determining_attributes, entity.name
                )
            )
        self.subclasses = list(subclasses)
        if not self.subclasses:
            raise ReproError("a specialization needs at least one subclass")
        self.name = name or "{}-specialization".format(entity.name)
        seen_local = entity.attributes
        for subclass in self.subclasses:
            for values in subclass.predicate_values:
                if attrset(values.keys()) != self.determining_attributes:
                    raise ReproError(
                        "predicate values {!r} of subclass {!r} do not bind exactly the "
                        "determining attributes {}".format(
                            values, subclass.name, self.determining_attributes
                        )
                    )
            overlap = subclass.local_attributes & entity.attributes
            if overlap:
                raise ReproError(
                    "local attributes {} of subclass {!r} clash with entity attributes".format(
                        overlap, subclass.name
                    )
                )

    # -- classification (Section 3.1) -------------------------------------------------------------

    @property
    def variant_attributes(self) -> AttributeSet:
        """The union of all subclass-local attributes (the dependency's ``Y``)."""
        result = AttributeSet()
        for subclass in self.subclasses:
            result = result | subclass.local_attributes
        return result

    def is_disjoint(self) -> bool:
        """Disjoint specialization: subclass attribute sets are pairwise disjoint."""
        for index, left in enumerate(self.subclasses):
            for right in self.subclasses[index + 1:]:
                if not left.local_attributes.isdisjoint(right.local_attributes):
                    return False
        return True

    def is_total(self, limit: int = 100_000) -> bool:
        """Total specialization: the predicate extensions cover ``Tup(X)``.

        Requires finite domains for the determining attributes.
        """
        ordered = list(self.determining_attributes)
        domains = [self.entity.domains[a.name] for a in ordered]
        covered = set()
        for subclass in self.subclasses:
            for values in subclass.predicate_values:
                covered.add(tuple(values[a.name] for a in ordered))
        for combination in cross_product(domains, limit=limit):
            if combination not in covered:
                return False
        return True

    def all_domains(self) -> Dict[str, Domain]:
        """Domains of the entity's own and all subclass-local attributes."""
        domains = dict(self.entity.domains)
        for subclass in self.subclasses:
            domains.update(subclass.local_domains)
        return domains

    def __repr__(self) -> str:
        return "Specialization({!r}, on={}, subclasses={})".format(
            self.name, self.determining_attributes, [s.name for s in self.subclasses]
        )
