"""Schema-design advisor for flexible relations with dependencies.

The paper's operational machinery makes several design questions mechanical; this
module packages them into one report so a designer (or a migration script) can ask
"is this table definition in good shape?":

* **redundant dependencies** — dependencies already implied by the rest of the set
  (minimal cover, Section 4's implication machinery);
* **specialization classification** — disjoint vs overlapping and total vs partial
  for every declared explicit AD (Section 3.1);
* **embedding obstacles** — explicit ADs whose determinant has more than one
  attribute need the artificial-attribute work-around before a variant-record
  embedding is possible (Section 4.2);
* **decomposition advice** — expected NULL savings of the flexible/decomposed
  representation over a flat single table, and whether a horizontal or vertical
  decomposition along each explicit AD *preserves* the declared dependencies
  (checked with the propagation rules of Theorem 4.3).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.closure import implies, minimal_cover
from repro.core.dependencies import Dependency, ExplicitAttributeDependency, FunctionalDependency
from repro.core.propagation import propagate_projection
from repro.engine.catalog import TableDefinition
from repro.errors import DependencyError
from repro.model.attributes import AttributeSet, attrset


def redundant_dependencies(dependencies: Sequence[Dependency]) -> List[Dependency]:
    """Dependencies implied by the remaining ones (candidates for removal)."""
    cover = minimal_cover(list(dependencies))
    return [dependency for dependency in dependencies if dependency not in cover]


def dependency_preservation(
    fragment_attribute_sets: Iterable,
    dependencies: Sequence[Dependency],
) -> Tuple[bool, List[Dependency]]:
    """Check whether a decomposition preserves the declared dependencies.

    Each fragment is given by its attribute set; the dependencies holding in a
    fragment are obtained with the projection rule of Theorem 4.3.  The decomposition
    preserves the declared set when the union of the fragment dependencies implies
    every declared dependency.  Returns ``(preserved, lost dependencies)``.
    """
    fragments = [attrset(attributes) for attributes in fragment_attribute_sets]
    available: List[Dependency] = []
    for fragment in fragments:
        for dependency in dependencies:
            if isinstance(dependency, ExplicitAttributeDependency):
                if dependency.lhs.issubset(fragment):
                    available.append(dependency.project_rhs(fragment))
            elif isinstance(dependency, FunctionalDependency):
                # FDs project like in classical theory: they survive (restricted to
                # the fragment) whenever their determinant lies in the fragment.
                if dependency.lhs.issubset(fragment):
                    available.append(
                        FunctionalDependency(dependency.lhs, dependency.rhs & fragment)
                    )
            else:
                available.extend(propagate_projection([dependency], fragment))
    lost = []
    for dependency in dependencies:
        candidate = dependency.to_ad() if isinstance(dependency, ExplicitAttributeDependency) \
            else dependency
        try:
            if not implies(available, candidate):
                lost.append(dependency)
        except DependencyError:
            lost.append(dependency)
    return (not lost), lost


class SpecializationAdvice:
    """Advice for one explicit attribute dependency of a definition."""

    def __init__(self, dependency: ExplicitAttributeDependency, disjoint: bool,
                 total: Optional[bool], needs_artificial_determinant: bool,
                 horizontal_preserves: bool, vertical_preserves: bool,
                 expected_null_cells_per_tuple: float):
        self.dependency = dependency
        self.disjoint = disjoint
        self.total = total
        self.needs_artificial_determinant = needs_artificial_determinant
        self.horizontal_preserves = horizontal_preserves
        self.vertical_preserves = vertical_preserves
        self.expected_null_cells_per_tuple = expected_null_cells_per_tuple

    def __repr__(self) -> str:
        return ("SpecializationAdvice(determinant={}, disjoint={}, total={}, "
                "artificial_determinant_needed={})").format(
            self.dependency.lhs, self.disjoint, self.total, self.needs_artificial_determinant)


class DesignReport:
    """The advisor's findings for one table definition."""

    def __init__(self, definition: TableDefinition):
        self.definition = definition
        self.redundant: List[Dependency] = []
        self.specializations: List[SpecializationAdvice] = []

    @property
    def clean(self) -> bool:
        """``True`` when nothing needs the designer's attention."""
        return not self.redundant and all(
            not advice.needs_artificial_determinant for advice in self.specializations
        )

    def summary(self) -> str:
        """A human-readable multi-line summary."""
        lines = ["design report for table {!r}".format(self.definition.name)]
        if self.redundant:
            lines.append("  redundant dependencies (implied by the others):")
            for dependency in self.redundant:
                lines.append("    - {!r}".format(dependency))
        else:
            lines.append("  no redundant dependencies")
        for advice in self.specializations:
            lines.append("  specialization on {}:".format(advice.dependency.lhs))
            lines.append("    disjoint: {}   total: {}".format(
                advice.disjoint, "unknown" if advice.total is None else advice.total))
            lines.append("    avoids ~{:.1f} NULL cells per tuple of a flat table".format(
                advice.expected_null_cells_per_tuple))
            lines.append("    horizontal decomposition preserves dependencies: {}".format(
                advice.horizontal_preserves))
            lines.append("    vertical decomposition preserves dependencies: {}".format(
                advice.vertical_preserves))
            if advice.needs_artificial_determinant:
                lines.append("    variant-record embedding needs an artificial determinant "
                             "(|X| > 1, Section 4.2)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "DesignReport({!r}, redundant={}, specializations={})".format(
            self.definition.name, len(self.redundant), len(self.specializations))


def advise(definition: TableDefinition) -> DesignReport:
    """Analyze a table definition and return a :class:`DesignReport`."""
    report = DesignReport(definition)
    dependencies = list(definition.dependencies)
    report.redundant = redundant_dependencies(dependencies)

    attributes = definition.scheme.attributes
    for dependency in dependencies:
        if not isinstance(dependency, ExplicitAttributeDependency):
            continue
        try:
            total = dependency.is_total(definition.domains) if all(
                attribute.name in definition.domains and definition.domains[attribute.name].is_finite
                for attribute in dependency.lhs
            ) else None
        except DependencyError:
            total = None

        # expected NULLs per tuple in a flat table, assuming variants are equally likely
        variant_sizes = [len(variant.attributes) for variant in dependency.variants]
        average_present = sum(variant_sizes) / len(variant_sizes)
        expected_nulls = len(dependency.rhs) - average_present

        # fragments of the two decompositions (by attribute sets)
        base = attributes - dependency.rhs
        horizontal_fragments = [base | variant.attributes for variant in dependency.variants]
        key = definition.key if definition.key is not None else dependency.lhs
        vertical_fragments = [base] + [key | variant.attributes | dependency.lhs
                                       for variant in dependency.variants]
        horizontal_ok, _ = dependency_preservation(horizontal_fragments, dependencies)
        vertical_ok, _ = dependency_preservation(vertical_fragments, dependencies)

        report.specializations.append(SpecializationAdvice(
            dependency,
            disjoint=dependency.is_disjoint(),
            total=total,
            needs_artificial_determinant=len(dependency.lhs) > 1,
            horizontal_preserves=horizontal_ok,
            vertical_preserves=vertical_ok,
            expected_null_cells_per_tuple=expected_nulls,
        ))
    return report
