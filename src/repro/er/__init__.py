"""Enhanced entity-relationship layer.

Section 3.1 of the paper maps *predicate-defined specializations* of enhanced-ER
models one-to-one onto attribute dependencies: replace each subclass predicate by its
extension ``V_i`` and the specialization becomes the explicit AD; disjointness of the
subclasses corresponds to pairwise disjoint ``Y_i``, totality to ``∪ V_i = Tup(X)``.

This package provides

* the ER vocabulary (entity types, predicate-defined specializations) —
  :mod:`repro.er.model`;
* the mapping onto flexible relations + dependencies and the classical relational
  translation methods it replaces — :mod:`repro.er.mapping`;
* horizontal / vertical decomposition along an attribute dependency with the outer
  union / multiway join restorations — :mod:`repro.er.decomposition`.
"""

from repro.er.model import EntityType, SpecializationSubclass, Specialization
from repro.er.mapping import (
    FlexibleMapping,
    specialization_to_dependency,
    specialization_to_flexible_relation,
)
from repro.er.decomposition import (
    DecompositionResult,
    horizontal_decomposition,
    null_count,
    vertical_decomposition,
)
from repro.er.advisor import (
    DesignReport,
    SpecializationAdvice,
    advise,
    dependency_preservation,
    redundant_dependencies,
)

__all__ = [
    "DesignReport",
    "SpecializationAdvice",
    "advise",
    "dependency_preservation",
    "redundant_dependencies",
    "EntityType",
    "SpecializationSubclass",
    "Specialization",
    "FlexibleMapping",
    "specialization_to_dependency",
    "specialization_to_flexible_relation",
    "DecompositionResult",
    "horizontal_decomposition",
    "vertical_decomposition",
    "null_count",
]
