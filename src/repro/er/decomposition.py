"""Decomposition of a flexible relation along an attribute dependency (Section 3.1.1).

The third and fourth classical translation methods for predicate-defined
specializations decompose the entity horizontally or vertically along the
specialization.  With attribute dependencies the decompositions become mechanical:

* **horizontal** — one fragment per variant (plus one for the tuples matching no
  variant); the qualification of a fragment is the variant's value set, and the
  original relation is restored by an *outer union* of the fragments;
* **vertical** — a master fragment with the non-variant attributes and one dependent
  fragment per variant carrying the key and the variant's attributes; the original
  relation is restored by a *multiway join* on the key.

Both functions return a :class:`DecompositionResult` that can restore the original
instance and verify losslessness; :func:`null_count` measures how many NULL cells a
flat single-table translation would need for the same data, which is the storage
comparison of experiment E8.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.dependencies import ExplicitAttributeDependency
from repro.errors import DecompositionError
from repro.model.attributes import AttributeSet, attrset
from repro.model.tuples import FlexTuple


def _as_tuples(relation) -> Set[FlexTuple]:
    if hasattr(relation, "tuples"):
        tuples = relation.tuples
        tuples = tuples() if callable(tuples) else tuples
    else:
        tuples = relation
    return {t if isinstance(t, FlexTuple) else FlexTuple(t) for t in tuples}


class DecompositionResult:
    """Fragments produced by a decomposition, with their qualifications and restoration."""

    def __init__(self, method: str, fragments: Dict[str, Set[FlexTuple]],
                 qualifications: Dict[str, List[Dict[str, object]]],
                 join_attributes: Optional[AttributeSet] = None):
        self.method = method
        self.fragments = {name: set(tuples) for name, tuples in fragments.items()}
        self.qualifications = dict(qualifications)
        self.join_attributes = join_attributes

    def fragment(self, name: str) -> Set[FlexTuple]:
        try:
            return set(self.fragments[name])
        except KeyError:
            raise DecompositionError("no fragment named {!r}".format(name)) from None

    def fragment_names(self) -> List[str]:
        return sorted(self.fragments)

    def total_tuples(self) -> int:
        """Number of stored tuples summed over all fragments."""
        return sum(len(tuples) for tuples in self.fragments.values())

    def total_cells(self) -> int:
        """Number of stored (attribute, value) cells summed over all fragments."""
        return sum(len(tup) for tuples in self.fragments.values() for tup in tuples)

    # -- restoration --------------------------------------------------------------------------

    def restore(self) -> Set[FlexTuple]:
        """Rebuild the original instance (outer union or multiway join)."""
        if self.method == "horizontal":
            result: Set[FlexTuple] = set()
            for tuples in self.fragments.values():
                result |= tuples
            return result
        if self.method == "vertical":
            if self.join_attributes is None:
                raise DecompositionError("vertical decomposition lost its join attributes")
            master = self.fragments.get("master", set())
            current = set(master)
            for name in self.fragment_names():
                if name == "master":
                    continue
                fragment = self.fragments[name]
                index: Dict[tuple, List[FlexTuple]] = {}
                for tup in fragment:
                    index.setdefault(tuple(tup[a] for a in self.join_attributes), []).append(tup)
                merged = set()
                for tup in current:
                    partners = index.get(tuple(tup[a] for a in self.join_attributes), [])
                    if not partners:
                        merged.add(tup)
                        continue
                    for partner in partners:
                        merged.add(tup.merge(partner))
                current = merged
            return current
        raise DecompositionError("unknown decomposition method {!r}".format(self.method))

    def is_lossless(self, original) -> bool:
        """``True`` when restoration reproduces the original instance exactly."""
        return self.restore() == _as_tuples(original)

    def __repr__(self) -> str:
        sizes = {name: len(tuples) for name, tuples in sorted(self.fragments.items())}
        return "DecompositionResult({}, fragments={})".format(self.method, sizes)


def horizontal_decomposition(relation, dependency: ExplicitAttributeDependency) -> DecompositionResult:
    """One fragment per variant; tuples matching no variant go to the ``'rest'`` fragment."""
    tuples = _as_tuples(relation)
    fragments: Dict[str, Set[FlexTuple]] = {}
    qualifications: Dict[str, List[Dict[str, object]]] = {}
    names: Dict[int, str] = {}
    for index, variant in enumerate(dependency.variants):
        name = variant.name or "variant-{}".format(index + 1)
        names[index] = name
        fragments[name] = set()
        qualifications[name] = [value.as_dict() for value in variant.values]
    fragments["rest"] = set()
    qualifications["rest"] = []
    for tup in tuples:
        variant = dependency.variant_for(tup)
        if variant is None:
            fragments["rest"].add(tup)
            continue
        index = dependency.variants.index(variant)
        fragments[names[index]].add(tup)
    if not fragments["rest"]:
        del fragments["rest"]
        del qualifications["rest"]
    return DecompositionResult("horizontal", fragments, qualifications)


def vertical_decomposition(relation, dependency: ExplicitAttributeDependency, key) -> DecompositionResult:
    """Master fragment without the variant attributes; one dependent fragment per variant."""
    key = attrset(key)
    if not key:
        raise DecompositionError("vertical decomposition needs a key to join on")
    if not key.isdisjoint(dependency.rhs):
        raise DecompositionError("the key must not contain variant attributes")
    tuples = _as_tuples(relation)
    for tup in tuples:
        if not tup.is_defined_on(key):
            raise DecompositionError(
                "tuple {!r} lacks the key {} required for vertical decomposition".format(tup, key)
            )
    fragments: Dict[str, Set[FlexTuple]] = {"master": set()}
    qualifications: Dict[str, List[Dict[str, object]]] = {"master": []}
    for index, variant in enumerate(dependency.variants):
        name = variant.name or "variant-{}".format(index + 1)
        fragments[name] = set()
        qualifications[name] = [value.as_dict() for value in variant.values]
    for tup in tuples:
        master_part = tup.project_existing(tup.attributes - dependency.rhs)
        fragments["master"].add(master_part)
        variant = dependency.variant_for(tup)
        if variant is None:
            continue
        name = variant.name or "variant-{}".format(dependency.variants.index(variant) + 1)
        dependent_part = tup.project_existing(key | (tup.attributes & variant.attributes))
        fragments[name].add(dependent_part)
    return DecompositionResult("vertical", fragments, qualifications, join_attributes=key)


def null_count(relation, full_attributes) -> int:
    """NULL cells a flat, homogeneous table over ``full_attributes`` would store.

    Each tuple of the flexible relation occupies one row of the flat table; every
    attribute the tuple does not possess becomes a NULL.  (The artificial variant-tag
    attribute such a table additionally needs is counted by the baseline itself.)
    """
    full_attributes = attrset(full_attributes)
    tuples = _as_tuples(relation)
    return sum(len(full_attributes - tup.attributes) for tup in tuples)
