"""Mapping predicate-defined specializations onto flexible relations + dependencies.

The paper's claim (Section 3.1): replacing each subclass predicate by its extension
``V_i`` turns a predicate-defined specialization into an explicit attribute
dependency, one-to-one.  The mapping below produces

* the flexible scheme — the entity's own attributes unconditioned, the union of the
  subclass-local attributes as an optional nested component,
* the explicit AD with one variant per subclass,
* the combined domain map and key,

packaged as a :class:`FlexibleMapping` that can be registered directly with the
engine (:meth:`FlexibleMapping.create_table`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.dependencies import ExplicitAttributeDependency, Variant
from repro.core.subtyping import SubtypeFamily, derive_subtype_family
from repro.er.model import Specialization
from repro.model.attributes import AttributeSet
from repro.model.domains import Domain
from repro.model.scheme import FlexibleScheme


class FlexibleMapping:
    """The result of mapping a specialization onto the model of flexible relations."""

    def __init__(self, specialization: Specialization, scheme: FlexibleScheme,
                 dependency: ExplicitAttributeDependency, domains: Dict[str, Domain],
                 key: Optional[AttributeSet]):
        self.specialization = specialization
        self.scheme = scheme
        self.dependency = dependency
        self.domains = domains
        self.key = key

    def create_table(self, database, name: Optional[str] = None, extra_dependencies=()):
        """Register the mapping as a table of a :class:`repro.engine.Database`."""
        return database.create_table(
            name or self.specialization.entity.name,
            self.scheme,
            domains=self.domains,
            key=self.key,
            dependencies=[self.dependency, *extra_dependencies],
        )

    def subtype_family(self) -> SubtypeFamily:
        """The record-subtype family induced by the mapping (Section 3.2)."""
        return derive_subtype_family(
            self.scheme.attributes,
            self.dependency,
            domains=self.domains,
            supertype_name=self.specialization.entity.name,
        )

    def __repr__(self) -> str:
        return "FlexibleMapping({!r})".format(self.specialization.name)


def specialization_to_dependency(specialization: Specialization) -> ExplicitAttributeDependency:
    """The explicit attribute dependency equivalent to a predicate-defined specialization."""
    variants = []
    for subclass in specialization.subclasses:
        variants.append(
            Variant(subclass.predicate_values, subclass.local_attributes, name=subclass.name)
        )
    return ExplicitAttributeDependency(
        specialization.determining_attributes,
        specialization.variant_attributes,
        variants,
    )


def specialization_to_flexible_relation(specialization: Specialization) -> FlexibleMapping:
    """Map a specialization onto a flexible scheme plus its explicit AD."""
    entity = specialization.entity
    base_attributes = sorted(a.name for a in entity.attributes)
    variant_attributes = sorted(a.name for a in specialization.variant_attributes)
    components = list(base_attributes)
    if variant_attributes:
        components.append(FlexibleScheme(0, len(variant_attributes), variant_attributes))
    scheme = FlexibleScheme(len(components), len(components), components)
    dependency = specialization_to_dependency(specialization)
    return FlexibleMapping(
        specialization,
        scheme,
        dependency,
        specialization.all_domains(),
        entity.key,
    )
