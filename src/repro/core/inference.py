"""Discovery of attribute and functional dependencies from instances.

The paper assumes dependencies are declared by the designer.  As a practical
extension (useful for migrating existing heterogeneous data into the model, and for
the property tests that need "the dependencies that actually hold" in generated
instances), this module mines them:

* :func:`discover_ads` — for every candidate determinant ``X`` (bounded size), the
  maximal ``Y`` with ``X --attr--> Y`` holding in the instance;
* :func:`discover_fds` — likewise for functional dependencies (Definition 4.2);
* :func:`discover_explicit_ad` — reconstruct the explicit variant structure
  ``V_i → Y_i`` for a given determinant, which is how an EAD can be reverse
  engineered from legacy data.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.dependencies import (
    AttributeDependency,
    ExplicitAttributeDependency,
    FunctionalDependency,
    Variant,
)
from repro.errors import DependencyError
from repro.model.attributes import AttributeSet, attrset
from repro.model.tuples import FlexTuple


def _tuples_of(relation) -> List[FlexTuple]:
    if hasattr(relation, "tuples"):
        candidate = relation.tuples
        tuples = candidate() if callable(candidate) else candidate
    else:
        tuples = relation
    return [t if isinstance(t, FlexTuple) else FlexTuple(t) for t in tuples]


def _instance_attributes(tuples: Iterable[FlexTuple]) -> AttributeSet:
    universe = AttributeSet()
    for tup in tuples:
        universe = universe | tup.attributes
    return universe


def maximal_ad_rhs(tuples: List[FlexTuple], lhs: AttributeSet, candidates: AttributeSet) -> AttributeSet:
    """The largest ``Y ⊆ candidates`` with ``lhs --attr--> Y`` holding in the instance."""
    groups: Dict[tuple, List[FlexTuple]] = defaultdict(list)
    for tup in tuples:
        if tup.is_defined_on(lhs):
            groups[tuple(tup[a] for a in lhs)].append(tup)
    stable = set(candidates.as_frozenset())
    for bucket in groups.values():
        if len(bucket) < 2:
            continue
        reference = bucket[0].attributes
        for tup in bucket[1:]:
            for attribute in list(stable):
                in_reference = attribute in reference
                in_current = attribute in tup.attributes
                if in_reference != in_current:
                    stable.discard(attribute)
        if not stable:
            break
    return AttributeSet(stable)


def maximal_fd_rhs(tuples: List[FlexTuple], lhs: AttributeSet, candidates: AttributeSet) -> AttributeSet:
    """The largest ``Y ⊆ candidates`` with ``lhs --func--> Y`` holding in the instance."""
    groups: Dict[tuple, List[FlexTuple]] = defaultdict(list)
    for tup in tuples:
        if tup.is_defined_on(lhs):
            groups[tuple(tup[a] for a in lhs)].append(tup)
    stable = set(candidates.as_frozenset())
    for bucket in groups.values():
        if len(bucket) < 2:
            continue
        reference = bucket[0]
        for tup in bucket[1:]:
            for attribute in list(stable):
                if attribute not in reference or attribute not in tup \
                        or reference[attribute] != tup[attribute]:
                    stable.discard(attribute)
        if not stable:
            break
    return AttributeSet(stable)


def discover_ads(
    relation,
    max_lhs: int = 2,
    include_trivial: bool = False,
    universe=None,
) -> Set[AttributeDependency]:
    """Mine the attribute dependencies holding in an instance.

    For every determinant ``X`` of size at most ``max_lhs`` the maximal right-hand
    side is reported (smaller right-hand sides follow by projectivity and are
    omitted).  Trivial dependencies (``Y ⊆ X``) are excluded unless requested.
    """
    tuples = _tuples_of(relation)
    universe = _instance_attributes(tuples) if universe is None else attrset(universe)
    found: Set[AttributeDependency] = set()
    attributes = list(universe)
    for size in range(1, max_lhs + 1):
        for combo in combinations(attributes, size):
            lhs = AttributeSet(combo)
            rhs = maximal_ad_rhs(tuples, lhs, universe - lhs)
            if include_trivial:
                rhs = rhs | lhs
            if rhs:
                found.add(AttributeDependency(lhs, rhs))
    return found


def discover_fds(
    relation,
    max_lhs: int = 2,
    universe=None,
) -> Set[FunctionalDependency]:
    """Mine the functional dependencies (Definition 4.2) holding in an instance."""
    tuples = _tuples_of(relation)
    universe = _instance_attributes(tuples) if universe is None else attrset(universe)
    found: Set[FunctionalDependency] = set()
    attributes = list(universe)
    for size in range(1, max_lhs + 1):
        for combo in combinations(attributes, size):
            lhs = AttributeSet(combo)
            rhs = maximal_fd_rhs(tuples, lhs, universe - lhs)
            if rhs:
                found.add(FunctionalDependency(lhs, rhs))
    return found


def discover_explicit_ad(
    relation,
    lhs,
    rhs=None,
) -> ExplicitAttributeDependency:
    """Reconstruct the explicit variant structure for a given determinant.

    Groups the instance by ``t[lhs]``; every group must exhibit a single subset of
    ``rhs`` (otherwise no AD with this determinant holds and
    :class:`~repro.errors.DependencyError` is raised).  Groups exhibiting the empty
    subset need no variant — Definition 2.1 already maps unmatched values to ∅.
    """
    tuples = _tuples_of(relation)
    lhs = attrset(lhs)
    universe = _instance_attributes(tuples)
    rhs = (universe - lhs) if rhs is None else attrset(rhs)

    groups: Dict[FlexTuple, Set] = {}
    for tup in tuples:
        if not tup.is_defined_on(lhs):
            continue
        key = tup.project(lhs)
        present = tup.attributes & rhs
        if key in groups and groups[key] != present:
            raise DependencyError(
                "no explicit AD with determinant {}: value {!r} exhibits both {} and {}".format(
                    lhs, key, groups[key], present
                )
            )
        groups[key] = present

    by_subset: Dict[AttributeSet, List[FlexTuple]] = defaultdict(list)
    for key, present in groups.items():
        if present:
            by_subset[present].append(key)
    variants = [Variant(values, attributes) for attributes, values in by_subset.items()]
    if not variants:
        raise DependencyError(
            "the instance exhibits no variant for determinant {}; an explicit AD needs "
            "at least one variant".format(lhs)
        )
    return ExplicitAttributeDependency(lhs, rhs, variants)
