"""Propagation of attribute dependencies through algebraic operators (Theorem 4.3).

Given the set ``ads(FR)`` of attribute dependencies holding in a flexible relation,
the theorem describes which dependencies hold in the result of the standard
operators:

1. ``ads(FR1 × FR2) = ads(FR1) ∪ ads(FR2)``
2. ``ads(π_X(FR)) = { V --attr--> W∩X | V --attr--> W ∈ ads(FR), V ⊆ X }``
3. ``ads(σ_F(FR)) = ads(FR)``
4. ``ads(FR1 ∪ FR2) = ∅``
5. ``ads(FR1 − FR2) = ads(FR1)``
6. ``ads(ε_{A:a1}(FR1) ∪ ε_{A:a2}(FR2)) = { AX --attr--> Y | X --attr--> Y ∈
   ads(FR1) ∪ ads(FR2) }`` — the *tagged* union that restores dependency
   information by extending both inputs with a tag attribute before the union.

The functions below implement the right-hand sides; the algebra evaluator
(:mod:`repro.algebra`) and the optimizer consult them to know which dependencies are
available at every node of an expression tree, and experiment E6 verifies the rules
against instances.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.core.dependencies import AttributeDependency, Dependency, ExplicitAttributeDependency
from repro.model.attributes import attrset


def _as_ads(dependencies: Iterable[Dependency]) -> Set[AttributeDependency]:
    """Normalize a dependency collection to abbreviated attribute dependencies."""
    result: Set[AttributeDependency] = set()
    for dependency in dependencies:
        if isinstance(dependency, ExplicitAttributeDependency):
            result.add(dependency.to_ad())
        elif isinstance(dependency, AttributeDependency):
            result.add(dependency)
        else:
            # Functional dependencies also imply their AD form (subsumption), so they
            # survive propagation in that weakened shape.
            result.add(AttributeDependency(dependency.lhs, dependency.rhs))
    return result


def propagate_product(ads_left: Iterable[Dependency], ads_right: Iterable[Dependency]) -> Set[AttributeDependency]:
    """Rule (1): the product keeps the dependencies of both inputs."""
    return _as_ads(ads_left) | _as_ads(ads_right)


def propagate_projection(ads: Iterable[Dependency], attributes) -> Set[AttributeDependency]:
    """Rule (2): only dependencies whose left side survives the projection remain,
    with their right side intersected with the projection attributes."""
    attributes = attrset(attributes)
    result: Set[AttributeDependency] = set()
    for dependency in _as_ads(ads):
        if dependency.lhs.issubset(attributes):
            result.add(AttributeDependency(dependency.lhs, dependency.rhs & attributes))
    return result


def propagate_selection(ads: Iterable[Dependency]) -> Set[AttributeDependency]:
    """Rule (3): selections preserve every dependency."""
    return _as_ads(ads)


def propagate_union(ads_left: Iterable[Dependency], ads_right: Iterable[Dependency]) -> Set[AttributeDependency]:
    """Rule (4): an untagged union preserves no dependency at all."""
    return set()


def propagate_difference(ads_left: Iterable[Dependency], ads_right: Iterable[Dependency]) -> Set[AttributeDependency]:
    """Rule (5): the difference keeps the dependencies of its left input."""
    return _as_ads(ads_left)


def propagate_extension(ads: Iterable[Dependency], new_attributes) -> Set[AttributeDependency]:
    """The extension operator enlarges every tuple, so existing dependencies survive.

    (The paper groups ε with the operators that "enlarge" the input, Section 4.3.)
    """
    del new_attributes  # the added attributes do not invalidate anything
    return _as_ads(ads)


def propagate_tagged_union(
    ads_left: Iterable[Dependency],
    ads_right: Iterable[Dependency],
    tag_attribute,
) -> Set[AttributeDependency]:
    """Rule (6): tag both inputs with ``tag_attribute`` before the union.

    Every dependency of either input survives with the tag attribute added to its
    left side (justified by left augmentation on the extended inputs).
    """
    tag = attrset(tag_attribute)
    result: Set[AttributeDependency] = set()
    for dependency in _as_ads(ads_left) | _as_ads(ads_right):
        result.add(AttributeDependency(dependency.lhs | tag, dependency.rhs))
    return result
