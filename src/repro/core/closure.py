"""Closures and syntactic implication for attribute and functional dependencies.

The appendix of the paper works with two closures of an attribute set ``X`` with
respect to a set of dependencies:

* ``X+func`` — the classical functional closure, computed with the FD rules
  (F1) reflexivity, (F2) augmentation, (F3) transitivity;
* ``X+attr`` — the attribute closure: all attributes ``A`` such that
  ``X --attr--> A`` is derivable.

Because transitivity is *not* valid for ADs, the attribute closure does not iterate:
under the pure system Å it is ``X ∪ ⋃ { W | (V --attr--> W) ∈ Σ, V ⊆ X }``; under
the combined system Å* the subsumption rule (AF1) and the combined transitivity rule
(AF2) extend it to
``X+func ∪ ⋃ { W | (V --attr--> W) ∈ Σ, V ⊆ X+func }``.
(The paper notes ``X+attr ⊇ X+func``.)

Syntactic implication is then a subset test against the appropriate closure:

* ``Σ ⊢ X --func--> Y``  iff  ``Y ⊆ X+func``,
* ``Σ ⊢ X --attr--> Y``  iff  ``Y ⊆ X+attr``.

These closure-based tests are the fast path; :mod:`repro.core.axioms` provides the
rule-by-rule derivation engine that produces proof traces and supports dropping
rules (for the non-redundancy experiments).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.core.dependencies import (
    AttributeDependency,
    Dependency,
    ExplicitAttributeDependency,
    FunctionalDependency,
)
from repro.errors import DependencyError
from repro.model.attributes import AttributeSet, attrset


def split_dependencies(dependencies: Iterable[Dependency]) -> Tuple[List[FunctionalDependency], List[AttributeDependency]]:
    """Separate a mixed dependency set into (FDs, ADs).

    Explicit ADs contribute their abbreviated form ``X --attr--> Y``; unknown
    dependency kinds are rejected.
    """
    fds: List[FunctionalDependency] = []
    ads: List[AttributeDependency] = []
    for dependency in dependencies:
        if isinstance(dependency, FunctionalDependency):
            fds.append(dependency)
        elif isinstance(dependency, ExplicitAttributeDependency):
            ads.append(dependency.to_ad())
        elif isinstance(dependency, AttributeDependency):
            ads.append(dependency)
        else:
            raise DependencyError("unknown dependency kind: {!r}".format(dependency))
    return fds, ads


def functional_closure(attributes, dependencies: Iterable[Dependency]) -> AttributeSet:
    """``X+func`` — the classical FD closure of ``attributes``.

    Only the functional dependencies of ``dependencies`` participate; attribute
    dependencies never contribute to the functional closure (there is no rule that
    turns an AD into an FD).
    """
    fds, _ = split_dependencies(dependencies)
    closure = attrset(attributes)
    changed = True
    while changed:
        changed = False
        for dependency in fds:
            if dependency.lhs.issubset(closure) and not dependency.rhs.issubset(closure):
                closure = closure | dependency.rhs
                changed = True
    return closure


def attribute_closure(
    attributes,
    dependencies: Iterable[Dependency],
    combined: bool = True,
) -> AttributeSet:
    """``X+attr`` — all attributes ``A`` with ``Σ ⊢ X --attr--> A``.

    With ``combined=True`` the closure is taken under the extended system Å*
    (FDs feed the determining side through combined transitivity); with
    ``combined=False`` only the pure AD system Å is used and FDs in ``dependencies``
    are ignored entirely.
    """
    fds, ads = split_dependencies(dependencies)
    base = attrset(attributes)
    determining = functional_closure(base, fds) if combined else base
    closure = determining if combined else base
    for dependency in ads:
        if dependency.lhs.issubset(determining):
            closure = closure | dependency.rhs
    return closure


def implies(dependencies: Iterable[Dependency], candidate: Dependency, combined: bool = True) -> bool:
    """Syntactic implication ``Σ ⊢ candidate`` decided via closures.

    ``candidate`` may be a functional dependency, an attribute dependency, or an
    explicit attribute dependency (which is weakened to its abbreviated form — the
    axiom systems of the paper only derive the abbreviated form).
    """
    dependencies = list(dependencies)
    if isinstance(candidate, FunctionalDependency):
        if not combined:
            raise DependencyError(
                "the pure AD system Å cannot derive functional dependencies"
            )
        return candidate.rhs.issubset(functional_closure(candidate.lhs, dependencies))
    if isinstance(candidate, ExplicitAttributeDependency):
        candidate = candidate.to_ad()
    if isinstance(candidate, AttributeDependency):
        return candidate.rhs.issubset(
            attribute_closure(candidate.lhs, dependencies, combined=combined)
        )
    raise DependencyError("unknown dependency kind: {!r}".format(candidate))


def implies_all(dependencies: Iterable[Dependency], candidates: Iterable[Dependency],
                combined: bool = True) -> bool:
    """``True`` when every candidate is syntactically implied."""
    dependencies = list(dependencies)
    return all(implies(dependencies, candidate, combined=combined) for candidate in candidates)


def equivalent(first: Iterable[Dependency], second: Iterable[Dependency], combined: bool = True) -> bool:
    """Two dependency sets are equivalent when each implies the other."""
    first = list(first)
    second = list(second)
    return implies_all(first, second, combined=combined) and implies_all(second, first, combined=combined)


def is_redundant(dependency: Dependency, dependencies: Iterable[Dependency], combined: bool = True) -> bool:
    """``True`` when ``dependency`` is already implied by the *other* dependencies."""
    rest = [d for d in dependencies if d is not dependency and d != dependency]
    try:
        return implies(rest, dependency, combined=combined)
    except DependencyError:
        return False


def minimal_cover(dependencies: Sequence[Dependency], combined: bool = True) -> List[Dependency]:
    """A non-redundant subset of ``dependencies`` equivalent to the whole set.

    The reduction mirrors the classical FD minimal-cover construction restricted to
    whole-dependency removal (right-hand-side splitting is unnecessary because the
    closure tests already operate attribute-wise).  The result depends on iteration
    order only in the presence of mutually derivable dependencies.
    """
    cover: List[Dependency] = list(dependencies)
    changed = True
    while changed:
        changed = False
        for dependency in list(cover):
            rest = [d for d in cover if d is not dependency]
            try:
                redundant = implies(rest, dependency, combined=combined)
            except DependencyError:
                redundant = False
            if redundant:
                cover = rest
                changed = True
                break
    return cover


def nontrivial_consequences(
    dependencies: Iterable[Dependency],
    universe,
    combined: bool = True,
    max_lhs: int = 3,
) -> Set[AttributeDependency]:
    """Enumerate non-trivial derivable ADs over subsets of ``universe``.

    Intended for small universes (tests and the axiom benchmarks): for every ``X``
    of size at most ``max_lhs`` the attribute closure yields the maximal derivable
    right-hand side; all single-attribute consequences are reported.
    """
    from itertools import combinations

    dependencies = list(dependencies)
    universe = list(attrset(universe))
    found: Set[AttributeDependency] = set()
    for size in range(1, max_lhs + 1):
        for combo in combinations(universe, size):
            lhs = AttributeSet(combo)
            closure = attribute_closure(lhs, dependencies, combined=combined)
            for attribute in closure - lhs:
                found.add(AttributeDependency(lhs, AttributeSet(attribute)))
    return found
