"""Attribute dependencies, explicit attribute dependencies and functional dependencies.

Three constraint classes from the paper:

* :class:`ExplicitAttributeDependency` — Definition 2.1.  Lists the legal variants
  explicitly: each variant pairs a set of determining values ``V_i ⊆ Tup(X)`` with
  the attribute set ``Y_i ⊆ Y`` that must be present exactly when ``t[X] ∈ V_i``;
  tuples whose ``X``-value matches no variant must possess no attribute of ``Y``.
* :class:`AttributeDependency` — Definition 4.1, the abbreviated form
  ``X --attr--> Y``: tuples that agree on ``X`` possess the same subset of ``Y``.
  Every explicit AD implies the corresponding abbreviated AD (``to_ad``).
* :class:`FunctionalDependency` — Definition 4.2, the classical FD adapted to
  flexible relations by guarding value access with ``X ⊆ attr(t)``.

All three share the :class:`Dependency` interface: ``holds_in(relation)`` evaluates
the constraint over a :class:`~repro.model.relation.FlexibleRelation` (or any
iterable of tuples), ``violations(relation)`` reports witnesses.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import DependencyError
from repro.model.attributes import AttributeSet, attrset
from repro.model.domains import Domain, cross_product
from repro.model.tuples import FlexTuple


def _tuples_of(relation) -> Iterable[FlexTuple]:
    """Accept a FlexibleRelation, an engine table, or a bare iterable of tuples."""
    if hasattr(relation, "tuples"):
        candidate = relation.tuples
        return candidate() if callable(candidate) else candidate
    return [t if isinstance(t, FlexTuple) else FlexTuple(t) for t in relation]


class Dependency:
    """Common interface of ADs, EADs and FDs."""

    #: short tag used in reprs and proof traces ("attr", "func", "exp.attr")
    kind: str = "dep"

    @property
    def lhs(self) -> AttributeSet:
        """The determining attribute set ``X``."""
        raise NotImplementedError

    @property
    def rhs(self) -> AttributeSet:
        """The determined attribute set ``Y``."""
        raise NotImplementedError

    def holds_in(self, relation) -> bool:
        """``True`` when the dependency is satisfied by the relation's instance."""
        return not self.violations(relation, first_only=True)

    def violations(self, relation, first_only: bool = False) -> List:
        """Witnesses of violation (tuples or tuple pairs); empty when satisfied."""
        raise NotImplementedError

    @property
    def attributes(self) -> AttributeSet:
        """All attributes mentioned by the dependency."""
        return self.lhs | self.rhs

    def __repr__(self) -> str:
        return "{} --{}--> {}".format(self.lhs, self.kind, self.rhs)


class AttributeDependency(Dependency):
    """``X --attr--> Y`` (Definition 4.1).

    A flexible relation satisfies the dependency when any two tuples that are both
    defined on ``X`` and agree on ``X`` possess the same subset of ``Y`` as
    attributes.  Nothing is said about the *values* of the ``Y`` attributes — this is
    precisely what distinguishes ADs from FDs and what invalidates transitivity.
    """

    kind = "attr"

    def __init__(self, lhs, rhs):
        self._lhs = attrset(lhs)
        self._rhs = attrset(rhs)

    @property
    def lhs(self) -> AttributeSet:
        return self._lhs

    @property
    def rhs(self) -> AttributeSet:
        return self._rhs

    @property
    def is_trivial(self) -> bool:
        """Trivial by reflexivity: ``Y ⊆ X``."""
        return self._rhs.issubset(self._lhs)

    def violations(self, relation, first_only: bool = False) -> List[Tuple[FlexTuple, FlexTuple]]:
        groups: Dict[tuple, List[FlexTuple]] = defaultdict(list)
        witnesses: List[Tuple[FlexTuple, FlexTuple]] = []
        for tup in _tuples_of(relation):
            if not tup.is_defined_on(self._lhs):
                continue
            key = tuple(tup[a] for a in self._lhs)
            bucket = groups[key]
            present = tup.attributes & self._rhs
            for other in bucket:
                if (other.attributes & self._rhs) != present:
                    witnesses.append((other, tup))
                    if first_only:
                        return witnesses
            bucket.append(tup)
        return witnesses

    def project_rhs(self, attributes) -> "AttributeDependency":
        """Rule (A1) applied syntactically: keep only the ``Y`` attributes in ``attributes``."""
        return AttributeDependency(self._lhs, self._rhs & attrset(attributes))

    def augment_lhs(self, attributes) -> "AttributeDependency":
        """Rule (A4) applied syntactically: ``X --attr--> Y ⊢ XZ --attr--> Y``."""
        return AttributeDependency(self._lhs | attrset(attributes), self._rhs)

    def __eq__(self, other) -> bool:
        if not isinstance(other, AttributeDependency) or isinstance(other, FunctionalDependency):
            return NotImplemented
        return self._lhs == other._lhs and self._rhs == other._rhs

    def __hash__(self) -> int:
        return hash(("attr", self._lhs, self._rhs))


class FunctionalDependency(Dependency):
    """``X --func--> Y`` adapted to flexible relations (Definition 4.2).

    Two tuples that are both defined on ``X`` and agree there must both be defined on
    all of ``Y`` and agree on ``Y``.  Note the existential strengthening with respect
    to the classical definition: the conclusion requires ``Y ⊆ attr(t)`` for *both*
    tuples.
    """

    kind = "func"

    def __init__(self, lhs, rhs):
        self._lhs = attrset(lhs)
        self._rhs = attrset(rhs)

    @property
    def lhs(self) -> AttributeSet:
        return self._lhs

    @property
    def rhs(self) -> AttributeSet:
        return self._rhs

    @property
    def is_trivial(self) -> bool:
        """Trivial by reflexivity: ``Y ⊆ X``."""
        return self._rhs.issubset(self._lhs)

    def violations(self, relation, first_only: bool = False) -> List[Tuple[FlexTuple, FlexTuple]]:
        groups: Dict[tuple, List[FlexTuple]] = defaultdict(list)
        witnesses: List[Tuple[FlexTuple, FlexTuple]] = []
        for tup in _tuples_of(relation):
            if not tup.is_defined_on(self._lhs):
                continue
            key = tuple(tup[a] for a in self._lhs)
            bucket = groups[key]
            for other in bucket:
                if not self._pair_ok(other, tup):
                    witnesses.append((other, tup))
                    if first_only:
                        return witnesses
            bucket.append(tup)
        return witnesses

    def _pair_ok(self, t1: FlexTuple, t2: FlexTuple) -> bool:
        if not (t1.is_defined_on(self._rhs) and t2.is_defined_on(self._rhs)):
            return False
        return all(t1[a] == t2[a] for a in self._rhs)

    def to_ad(self) -> AttributeDependency:
        """The subsumption rule (AF1): every FD implies the AD with the same sides."""
        return AttributeDependency(self._lhs, self._rhs)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FunctionalDependency):
            return NotImplemented
        return self._lhs == other._lhs and self._rhs == other._rhs

    def __hash__(self) -> int:
        return hash(("func", self._lhs, self._rhs))


class Variant:
    """One variant ``V_i --exp.attr--> Y_i`` of an explicit attribute dependency.

    ``values`` is the set ``V_i ⊆ Tup(X)`` of determining tuples; ``attributes`` is
    the attribute set ``Y_i ⊆ Y`` that must be present exactly when the tuple's
    ``X``-projection lies in ``V_i``.  A name may be given for display (e.g. the
    subtype name the variant induces).
    """

    def __init__(self, values: Iterable, attributes, name: Optional[str] = None):
        if isinstance(values, (FlexTuple, dict)):
            # A single determining value is common (one value per variant, as in the
            # jobtype example); accept it without the enclosing list.
            values = [values]
        normalized = []
        for value in values:
            normalized.append(value if isinstance(value, FlexTuple) else FlexTuple(value))
        if not normalized:
            raise DependencyError("a variant needs at least one determining value")
        self.values: Tuple[FlexTuple, ...] = tuple(normalized)
        self.attributes = attrset(attributes)
        self.name = name

    def matches(self, projection: FlexTuple) -> bool:
        """``True`` when the ``X``-projection of a tuple lies in ``V_i``."""
        return projection in self.values

    def __repr__(self) -> str:
        label = self.name + ": " if self.name else ""
        values = ", ".join(repr(v) for v in self.values)
        return "{}{{{}}} --exp.attr--> {}".format(label, values, self.attributes)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Variant):
            return NotImplemented
        return set(self.values) == set(other.values) and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((frozenset(self.values), self.attributes))


class ExplicitAttributeDependency(Dependency):
    """``<X --exp.attr--> Y, {V_1 --> Y_1, ..., V_n --> Y_n}>`` (Definition 2.1).

    Structural requirements enforced at construction time: every ``Y_i`` is a subset
    of ``Y``, the value sets ``V_i`` are pairwise disjoint, and every determining
    tuple is defined exactly on ``X``.
    """

    kind = "exp.attr"

    def __init__(self, lhs, rhs, variants: Sequence[Variant]):
        self._lhs = attrset(lhs)
        self._rhs = attrset(rhs)
        variants = tuple(
            v if isinstance(v, Variant) else Variant(v[0], v[1]) for v in variants
        )
        if not variants:
            raise DependencyError("an explicit AD needs at least one variant")
        seen_values = set()
        for variant in variants:
            if not variant.attributes.issubset(self._rhs):
                raise DependencyError(
                    "variant attribute set {} is not a subset of {}".format(
                        variant.attributes, self._rhs
                    )
                )
            for value in variant.values:
                if value.attributes != self._lhs:
                    raise DependencyError(
                        "determining value {!r} is not defined exactly on {}".format(
                            value, self._lhs
                        )
                    )
                if value in seen_values:
                    raise DependencyError(
                        "determining value {!r} occurs in more than one variant "
                        "(the V_i must be pairwise disjoint)".format(value)
                    )
                seen_values.add(value)
        self._variants = variants

    # -- accessors ---------------------------------------------------------------------

    @property
    def lhs(self) -> AttributeSet:
        return self._lhs

    @property
    def rhs(self) -> AttributeSet:
        return self._rhs

    @property
    def variants(self) -> Tuple[Variant, ...]:
        return self._variants

    # -- semantics ------------------------------------------------------------------------

    def variant_for(self, tup: FlexTuple) -> Optional[Variant]:
        """The variant whose value set contains ``t[X]``, or ``None``.

        ``None`` is returned both when no variant matches and when the tuple is not
        defined on all of ``X``; in both cases the dependency demands
        ``attr(t) ∩ Y = ∅``.
        """
        if not tup.is_defined_on(self._lhs):
            return None
        projection = tup.project(self._lhs)
        for variant in self._variants:
            if variant.matches(projection):
                return variant
        return None

    def required_attributes(self, tup: FlexTuple) -> AttributeSet:
        """The exact subset of ``Y`` the tuple must carry."""
        variant = self.variant_for(tup)
        return variant.attributes if variant is not None else AttributeSet()

    def check_tuple(self, tup: FlexTuple) -> bool:
        """``True`` when the single tuple conforms to the dependency."""
        return (tup.attributes & self._rhs) == self.required_attributes(tup)

    def violations(self, relation, first_only: bool = False) -> List[FlexTuple]:
        witnesses = []
        for tup in _tuples_of(relation):
            if not self.check_tuple(tup):
                witnesses.append(tup)
                if first_only:
                    return witnesses
        return witnesses

    # -- classification (Section 3.1) --------------------------------------------------------

    def is_disjoint(self) -> bool:
        """Disjoint specialization: the variant attribute sets are pairwise disjoint."""
        for i, left in enumerate(self._variants):
            for right in self._variants[i + 1:]:
                if not left.attributes.isdisjoint(right.attributes):
                    return False
        return True

    def is_total(self, domains: Dict[str, Domain], limit: Optional[int] = 100_000) -> bool:
        """Total specialization: ``∪ V_i = Tup(X)`` under the given finite domains."""
        ordered = list(self._lhs)
        domain_list = []
        for attribute in ordered:
            try:
                domain_list.append(domains[attribute.name])
            except KeyError:
                raise DependencyError(
                    "no domain declared for determining attribute {!r}".format(attribute.name)
                ) from None
        covered = {tuple(v[a] for a in ordered) for variant in self._variants for v in variant.values}
        for combination in cross_product(domain_list, limit=limit):
            if combination not in covered:
                return False
        return True

    # -- conversions and rule applications -------------------------------------------------------

    def to_ad(self) -> AttributeDependency:
        """The abbreviated AD ``X --attr--> Y`` implied by this explicit AD."""
        return AttributeDependency(self._lhs, self._rhs)

    def project_rhs(self, attributes) -> "ExplicitAttributeDependency":
        """Rule (A1) in explicit form: intersect ``Y`` and every ``Y_i`` with ``attributes``."""
        attributes = attrset(attributes)
        variants = [
            Variant(v.values, v.attributes & attributes, name=v.name) for v in self._variants
        ]
        return ExplicitAttributeDependency(self._lhs, self._rhs & attributes, variants)

    def combine(self, other: "ExplicitAttributeDependency") -> "ExplicitAttributeDependency":
        """The additivity rule (A2) in explicit form (Section 4.1).

        Both dependencies must share the determining attribute set ``X``.  The result
        pairs ``V1_i ∩ V2_j`` with ``Y1_i ∪ Y2_j`` for every non-empty intersection.
        """
        if self._lhs != other._lhs:
            raise DependencyError(
                "additivity in explicit form requires the same determining attributes"
            )
        variants: List[Variant] = []
        for left in self._variants:
            for right in other._variants:
                common = [v for v in left.values if v in right.values]
                if common:
                    variants.append(Variant(common, left.attributes | right.attributes))
        if not variants:
            raise DependencyError("combined explicit AD has no variants (disjoint value sets)")
        return ExplicitAttributeDependency(self._lhs, self._rhs | other._rhs, variants)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ExplicitAttributeDependency):
            return NotImplemented
        return (
            self._lhs == other._lhs
            and self._rhs == other._rhs
            and set(self._variants) == set(other._variants)
        )

    def __hash__(self) -> int:
        return hash(("exp.attr", self._lhs, self._rhs, frozenset(self._variants)))

    def __repr__(self) -> str:
        variants = "; ".join(repr(v) for v in self._variants)
        return "<{} --exp.attr--> {}, [{}]>".format(self._lhs, self._rhs, variants)


# -- convenience constructors -----------------------------------------------------------------------


def ad(lhs, rhs) -> AttributeDependency:
    """Shorthand constructor for :class:`AttributeDependency`."""
    return AttributeDependency(lhs, rhs)


def fd(lhs, rhs) -> FunctionalDependency:
    """Shorthand constructor for :class:`FunctionalDependency`."""
    return FunctionalDependency(lhs, rhs)


def ead(lhs, rhs, variants) -> ExplicitAttributeDependency:
    """Shorthand constructor for :class:`ExplicitAttributeDependency`.

    ``variants`` may be :class:`Variant` objects or ``(values, attributes)`` pairs
    where ``values`` is an iterable of mappings over ``lhs``.
    """
    return ExplicitAttributeDependency(lhs, rhs, list(variants))
