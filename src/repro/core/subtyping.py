"""Semantic-preserving record subtyping through attribute dependencies (Section 3.2).

An explicit attribute dependency over a flexible scheme with attribute set ``W``
induces a family of record types:

* the **supertype** has the attributes ``W − Y`` and leaves the domain of the
  determining attributes ``X`` unrestricted;
* for every variant ``i`` there is a **subtype** with attributes ``(W − Y) ∪ Y_i``
  and the domain of ``X`` restricted to the variant's value set ``V_i``.

Both type changes — the domain restriction of ``X`` and the addition of the ``Y_i``
attributes — happen *simultaneously* and are causally connected by the dependency.
The traditional record-subtyping rule treats them as accidental: it also accepts the
type obtained by projecting the determining attributes away (e.g.
``<salary: float>`` without ``jobtype``) as a valid supertype, although the
connection between determinant and variants is then destroyed.  This module builds
the AD-derived family, evaluates candidate supertypes under both notions, and
reports the "lost connection" cases that only the AD-based notion rejects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.dependencies import ExplicitAttributeDependency, Variant
from repro.errors import DependencyError, TypeCheckError
from repro.model.attributes import AttributeSet, attrset
from repro.model.domains import AnyDomain, Domain, EnumDomain
from repro.model.scheme import FlexibleScheme
from repro.types.record_types import RecordType, is_record_subtype


class SubtypeFamily:
    """The supertype and the variant subtypes induced by an explicit AD."""

    def __init__(self, supertype: RecordType, subtypes: Dict[str, RecordType],
                 dependency: ExplicitAttributeDependency):
        self.supertype = supertype
        self.subtypes = dict(subtypes)
        self.dependency = dependency

    @property
    def determining_attributes(self) -> AttributeSet:
        """The attribute set ``X`` whose values select the variant."""
        return self.dependency.lhs

    def subtype(self, name: str) -> RecordType:
        """The subtype registered under ``name``."""
        try:
            return self.subtypes[name]
        except KeyError:
            raise TypeCheckError("no subtype named {!r} in the family".format(name)) from None

    def subtype_names(self) -> List[str]:
        return sorted(self.subtypes)

    # -- the two notions of "valid supertype" ------------------------------------------------

    def record_rule_accepts(self, candidate: RecordType) -> bool:
        """Traditional record subtyping: every subtype is a record subtype of ``candidate``."""
        return all(is_record_subtype(subtype, candidate) for subtype in self.subtypes.values())

    def ad_rule_accepts(self, candidate: RecordType) -> bool:
        """AD-based subtyping: the record rule *plus* preservation of the determinant.

        The candidate must keep every determining attribute of the dependency,
        otherwise the causal connection between the domain restriction and the added
        attributes is lost and the subtype relation is no longer semantic-preserving.
        """
        if not self.record_rule_accepts(candidate):
            return False
        return self.determining_attributes.issubset(candidate.attributes)

    def classify_candidate(self, candidate: RecordType) -> str:
        """One of ``"valid"``, ``"lost-connection"``, ``"rejected"``.

        ``"lost-connection"`` marks exactly the candidates the paper warns about:
        accepted by the traditional rule, rejected by the AD-based rule.
        """
        record_ok = self.record_rule_accepts(candidate)
        ad_ok = self.ad_rule_accepts(candidate)
        if ad_ok:
            return "valid"
        if record_ok:
            return "lost-connection"
        return "rejected"

    def __repr__(self) -> str:
        return "SubtypeFamily(supertype={!r}, subtypes={})".format(
            self.supertype.name, self.subtype_names()
        )


def derive_subtype_family(
    attributes,
    dependency: ExplicitAttributeDependency,
    domains: Optional[Dict[str, Domain]] = None,
    supertype_name: str = "supertype",
) -> SubtypeFamily:
    """Build the subtype family induced by an explicit AD (Section 3.2).

    ``attributes`` is the attribute set ``W`` of the flexible scheme (a
    :class:`~repro.model.scheme.FlexibleScheme` is accepted and unwrapped);
    ``domains`` supplies the attribute domains (defaulting to the unrestricted
    domain).  Variant names default to ``variant-1 .. variant-n`` when the variants
    carry no names.
    """
    if isinstance(attributes, FlexibleScheme):
        attributes = attributes.attributes
    attributes = attrset(attributes)
    domains = dict(domains or {})
    if not dependency.lhs.issubset(attributes):
        raise DependencyError(
            "determining attributes {} are not part of the scheme attributes {}".format(
                dependency.lhs, attributes
            )
        )

    def domain_for(name: str) -> Domain:
        return domains.get(name, AnyDomain())

    supertype_attrs = attributes - dependency.rhs
    supertype = RecordType(
        supertype_name, {a.name: domain_for(a.name) for a in supertype_attrs}
    )

    subtypes: Dict[str, RecordType] = {}
    determinant = list(dependency.lhs)
    for index, variant in enumerate(dependency.variants, start=1):
        name = variant.name or "variant-{}".format(index)
        fields = {a.name: domain_for(a.name) for a in (supertype_attrs | variant.attributes)}
        for attribute in determinant:
            allowed = sorted({value[attribute] for value in variant.values}, key=repr)
            base = domain_for(attribute.name)
            try:
                fields[attribute.name] = base.restrict(allowed)
            except Exception:
                fields[attribute.name] = EnumDomain(allowed, name="{}|{}".format(attribute.name, name))
        subtypes[name] = RecordType(name, fields)
    return SubtypeFamily(supertype, subtypes, dependency)


def lost_connection(candidate: RecordType, family: SubtypeFamily) -> bool:
    """``True`` when ``candidate`` is accepted by the traditional record-subtyping rule
    but loses the causal connection the dependency establishes (Example 3's
    ``<..., salary: float>`` without ``jobtype``)."""
    return family.classify_candidate(candidate) == "lost-connection"


def candidate_supertypes(family: SubtypeFamily) -> List[RecordType]:
    """Enumerate every projection of the family's supertype as a candidate supertype.

    Used by experiment E7: the traditional rule accepts all of them, the AD-based
    rule only those that retain the determining attributes.
    """
    from itertools import combinations

    fields = sorted(family.supertype.fields)
    candidates: List[RecordType] = []
    for size in range(1, len(fields) + 1):
        for combo in combinations(fields, size):
            name = "candidate<{}>".format(",".join(combo))
            candidates.append(family.supertype.project(name, combo))
    return candidates
