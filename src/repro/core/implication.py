"""Semantic implication of attribute and functional dependencies.

A dependency ``d`` is *semantically implied* by a set ``AF`` when every flexible
relation satisfying all of ``AF`` also satisfies ``d``.  The appendix of the paper
proves completeness of Å* by constructing, for every non-derivable candidate
``X --attr--> Y`` (or ``X --func--> Y``), a two-tuple relation that satisfies every
derivable dependency but violates the candidate:

===========================  =====================================  ==================
attributes of ``X+func``     attributes of ``X+attr − X+func``       attributes outside
===========================  =====================================  ==================
``t1``: 1 … 1                1 … 1                                   1 … 1
``t2``: 1 … 1                0 … 0                                   (non-existent)
===========================  =====================================  ==================

This module builds that relation (:func:`counterexample_relation`), decides semantic
implication with it (:func:`semantically_implies`), and offers a randomized model
checker (:func:`random_satisfying_relation` + :func:`holds_in_random_models`) that
experiments E3/E4 use to validate soundness independently of the construction.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.core.closure import attribute_closure, functional_closure, split_dependencies
from repro.core.dependencies import (
    AttributeDependency,
    Dependency,
    ExplicitAttributeDependency,
    FunctionalDependency,
)
from repro.errors import DependencyError
from repro.model.attributes import AttributeSet, attrset
from repro.model.relation import FlexibleRelation
from repro.model.scheme import UnfoldedScheme
from repro.model.tuples import FlexTuple


def dependency_universe(dependencies: Iterable[Dependency], *extra) -> AttributeSet:
    """The set of attributes mentioned by the dependencies plus any extra sets."""
    universe = AttributeSet()
    for dependency in dependencies:
        universe = universe | dependency.attributes
    for item in extra:
        universe = universe | attrset(item)
    return universe


def counterexample_relation(
    dependencies: Iterable[Dependency],
    lhs,
    universe=None,
) -> FlexibleRelation:
    """The appendix's two-tuple relation for a candidate with left side ``lhs``.

    ``t1`` is defined on the whole universe with value ``1`` everywhere; ``t2`` is
    defined on ``lhs+attr`` with value ``1`` on ``lhs+func`` and ``0`` on the rest.
    The returned relation satisfies every dependency derivable from ``dependencies``
    (under Å*) and violates exactly the non-derivable candidates with this left side.
    """
    dependencies = list(dependencies)
    lhs = attrset(lhs)
    universe = dependency_universe(dependencies, lhs) if universe is None else attrset(universe)
    if not lhs.issubset(universe):
        raise DependencyError("left side {} is not contained in the universe {}".format(lhs, universe))
    x_func = functional_closure(lhs, dependencies) & universe
    x_attr = attribute_closure(lhs, dependencies, combined=True) & universe

    t1 = FlexTuple({attribute.name: 1 for attribute in universe})
    t2_values = {attribute.name: 1 for attribute in x_func}
    t2_values.update({attribute.name: 0 for attribute in (x_attr - x_func)})
    t2 = FlexTuple(t2_values)

    scheme = UnfoldedScheme({
        frozenset(universe.as_frozenset()),
        frozenset(x_attr.as_frozenset()),
    })
    relation = FlexibleRelation(scheme, name="counterexample", validate=False)
    relation.insert(t1)
    relation.insert(t2)
    return relation


def semantically_implies(
    dependencies: Iterable[Dependency],
    candidate: Dependency,
    universe=None,
) -> bool:
    """Decide whether every relation satisfying ``dependencies`` satisfies ``candidate``.

    The decision procedure is the appendix construction: the candidate is implied iff
    it holds in the counterexample relation built for its left side.  (Soundness of
    the construction — the relation really satisfies every derivable dependency — is
    itself exercised by the test suite and by experiment E3.)
    """
    dependencies = list(dependencies)
    if isinstance(candidate, ExplicitAttributeDependency):
        candidate = candidate.to_ad()
    if universe is None:
        # The universe must cover the candidate's attributes: an attribute outside
        # the construction's universe would be absent from both tuples and the
        # candidate would hold vacuously.
        universe = dependency_universe(dependencies, candidate.attributes)
    relation = counterexample_relation(dependencies, candidate.lhs, universe=universe)
    return candidate.holds_in(relation)


def random_heterogeneous_tuple(
    universe: AttributeSet,
    rng: random.Random,
    value_pool: Sequence = (0, 1, 2),
    min_attributes: int = 1,
) -> FlexTuple:
    """A random tuple over a random non-empty subset of ``universe``."""
    attributes = list(universe)
    if not attributes:
        raise DependencyError("cannot build tuples over an empty universe")
    count = rng.randint(min(min_attributes, len(attributes)), len(attributes))
    chosen = rng.sample(attributes, count)
    return FlexTuple({attribute.name: rng.choice(list(value_pool)) for attribute in chosen})


def random_satisfying_relation(
    dependencies: Iterable[Dependency],
    universe=None,
    size: int = 20,
    rng: Optional[random.Random] = None,
    value_pool: Sequence = (0, 1, 2),
    max_attempts_per_tuple: int = 50,
) -> FlexibleRelation:
    """Generate a random relation that satisfies every given dependency.

    Tuples are generated at random and admitted only when the instance stays
    consistent — a simple rejection sampler that is adequate for the small universes
    used by the property tests and the axiom experiments.  The resulting relation may
    contain fewer than ``size`` tuples when consistent extensions become rare.
    """
    dependencies = list(dependencies)
    rng = rng or random.Random(0)
    universe = dependency_universe(dependencies) if universe is None else attrset(universe)
    combos = set()
    relation = FlexibleRelation(
        UnfoldedScheme({frozenset(universe.as_frozenset())}), name="random", validate=False
    )
    accepted: List[FlexTuple] = []
    for _ in range(size):
        for _attempt in range(max_attempts_per_tuple):
            candidate = random_heterogeneous_tuple(universe, rng, value_pool=value_pool)
            trial = accepted + [candidate]
            if all(dependency.holds_in(trial) for dependency in dependencies):
                accepted.append(candidate)
                combos.add(frozenset(candidate.attributes.as_frozenset()))
                break
    relation = FlexibleRelation(
        UnfoldedScheme(combos or {frozenset(universe.as_frozenset())}),
        name="random",
        validate=False,
    )
    for tup in accepted:
        relation.insert(tup)
    return relation


def holds_in_random_models(
    dependencies: Iterable[Dependency],
    candidate: Dependency,
    models: int = 20,
    size: int = 15,
    seed: int = 0,
    universe=None,
) -> bool:
    """Randomized refutation check used to cross-validate soundness.

    Generates ``models`` random relations satisfying ``dependencies`` and returns
    ``False`` as soon as one violates ``candidate``.  A ``True`` result is evidence
    (not proof) of implication; a ``False`` result is a definite refutation.
    """
    dependencies = list(dependencies)
    if isinstance(candidate, ExplicitAttributeDependency):
        candidate = candidate.to_ad()
    universe = dependency_universe(dependencies, candidate.attributes) if universe is None \
        else attrset(universe)
    for index in range(models):
        rng = random.Random(seed + index)
        relation = random_satisfying_relation(
            dependencies, universe=universe, size=size, rng=rng
        )
        if not candidate.holds_in(relation):
            return False
    return True
