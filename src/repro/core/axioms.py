r"""The axiom systems Å and Å* with a derivation engine and proof traces.

Section 4 of the paper defines two rule systems:

* **Å** (Theorem 4.1) for attribute dependencies alone:

  - (A1) projectivity      ``X --attr--> YZ ⊢ X --attr--> Y``
  - (A2) additivity        ``{X --attr--> Y, X --attr--> Z} ⊢ X --attr--> YZ``
  - (A3) reflexivity       ``∅ ⊢ X --attr--> Y`` if ``Y ⊆ X``
  - (A4) left augmentation ``X --attr--> Y ⊢ XZ --attr--> Y``

* **Å\*** (Theorem 4.2) for functional and attribute dependencies combined:

  - (AF1) subsumption           ``X --func--> Y ⊢ X --attr--> Y``
  - (AF2) combined transitivity ``{X --func--> Y, Y --attr--> Z} ⊢ X --attr--> Z``
  - (A1), (A2) as above
  - (F1) FD reflexivity   ``∅ ⊢ X --func--> Y`` if ``Y ⊆ X``
  - (F2) FD augmentation  ``X --func--> Y ⊢ XZ --func--> YZ``
  - (F3) FD transitivity  ``{X --func--> Y, Y --func--> Z} ⊢ X --func--> Z``

Two engines are provided:

* :func:`derive` — a *constructive* prover.  It decides derivability through the
  closures of :mod:`repro.core.closure` and, when the target is derivable, emits a
  :class:`DerivationTrace` whose steps each name the applied rule, the premises and
  the conclusion (the canonical derivations from the completeness proof).
* :func:`forward_chain` — a *generic* saturation engine that applies the rules
  syntactically over a bounded attribute universe.  It is slower but lets the
  experiments drop individual rules, which is how the non-redundancy part of
  Theorems 4.1/4.2 is demonstrated empirically (benchmarks E3/E4).
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.closure import attribute_closure, functional_closure, split_dependencies
from repro.core.dependencies import (
    AttributeDependency,
    Dependency,
    ExplicitAttributeDependency,
    FunctionalDependency,
)
from repro.errors import DerivationError
from repro.model.attributes import AttributeSet, attrset


class DerivationStep:
    """One application of an inference rule."""

    def __init__(self, rule: str, premises: Sequence[Dependency], conclusion: Dependency):
        self.rule = rule
        self.premises = tuple(premises)
        self.conclusion = conclusion

    def __repr__(self) -> str:
        if self.premises:
            premises = ", ".join(repr(p) for p in self.premises)
            return "[{}] {{{}}} ⊢ {}".format(self.rule, premises, self.conclusion)
        return "[{}] ∅ ⊢ {}".format(self.rule, self.conclusion)


class DerivationTrace:
    """A full derivation: the hypotheses used plus the ordered list of steps."""

    def __init__(self, target: Dependency, steps: Sequence[DerivationStep],
                 hypotheses: Sequence[Dependency]):
        self.target = target
        self.steps = list(steps)
        self.hypotheses = list(hypotheses)

    @property
    def conclusion(self) -> Dependency:
        """The final derived dependency (equals the requested target)."""
        if not self.steps:
            return self.target
        return self.steps[-1].conclusion

    def rules_used(self) -> List[str]:
        """The rule names in application order."""
        return [step.rule for step in self.steps]

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def __repr__(self) -> str:
        lines = ["derivation of {}:".format(self.target)]
        for index, step in enumerate(self.steps, start=1):
            lines.append("  {:2d}. {!r}".format(index, step))
        return "\n".join(lines)


class InferenceRule:
    """A named inference rule usable by the forward-chaining engine.

    ``instantiate`` receives the currently known dependencies and the attribute
    universe and yields ``(conclusion, premises)`` pairs for every (bounded)
    applicable instantiation.
    """

    def __init__(self, name: str,
                 instantiate: Callable[[Sequence[Dependency], AttributeSet], Iterable[Tuple[Dependency, Tuple[Dependency, ...]]]]):
        self.name = name
        self._instantiate = instantiate

    def instantiate(self, known: Sequence[Dependency], universe: AttributeSet):
        return self._instantiate(known, universe)

    def __repr__(self) -> str:
        return "InferenceRule({!r})".format(self.name)


def _subsets(attributes: AttributeSet, include_empty: bool = True) -> Iterable[AttributeSet]:
    items = list(attributes)
    start = 0 if include_empty else 1
    for size in range(start, len(items) + 1):
        for combo in itertools.combinations(items, size):
            yield AttributeSet(combo)


# -- rule instantiators (forward chaining) ----------------------------------------------------------


def _rule_projectivity(known, universe):
    for dep in known:
        if not isinstance(dep, AttributeDependency) or isinstance(dep, FunctionalDependency):
            continue
        for subset in _subsets(dep.rhs, include_empty=True):
            if subset != dep.rhs:
                yield AttributeDependency(dep.lhs, subset), (dep,)


def _rule_additivity(known, universe):
    ads = [d for d in known
           if isinstance(d, AttributeDependency) and not isinstance(d, FunctionalDependency)]
    for left, right in itertools.combinations(ads, 2):
        if left.lhs == right.lhs:
            yield AttributeDependency(left.lhs, left.rhs | right.rhs), (left, right)


def _rule_ad_reflexivity(known, universe):
    for lhs in _subsets(universe, include_empty=False):
        for rhs in _subsets(lhs, include_empty=True):
            yield AttributeDependency(lhs, rhs), ()


def _rule_left_augmentation(known, universe):
    for dep in known:
        if not isinstance(dep, AttributeDependency) or isinstance(dep, FunctionalDependency):
            continue
        extra = universe - dep.lhs
        for addition in _subsets(extra, include_empty=False):
            yield AttributeDependency(dep.lhs | addition, dep.rhs), (dep,)


def _rule_subsumption(known, universe):
    for dep in known:
        if isinstance(dep, FunctionalDependency):
            yield AttributeDependency(dep.lhs, dep.rhs), (dep,)


def _rule_combined_transitivity(known, universe):
    fds = [d for d in known if isinstance(d, FunctionalDependency)]
    ads = [d for d in known
           if isinstance(d, AttributeDependency) and not isinstance(d, FunctionalDependency)]
    for fd_dep in fds:
        for ad_dep in ads:
            if fd_dep.rhs == ad_dep.lhs:
                yield AttributeDependency(fd_dep.lhs, ad_dep.rhs), (fd_dep, ad_dep)


def _rule_fd_reflexivity(known, universe):
    for lhs in _subsets(universe, include_empty=False):
        for rhs in _subsets(lhs, include_empty=True):
            yield FunctionalDependency(lhs, rhs), ()


def _rule_fd_augmentation(known, universe):
    for dep in known:
        if not isinstance(dep, FunctionalDependency):
            continue
        # Z may overlap the dependency's own attributes (e.g. A --func--> B augmented
        # with A yields A --func--> AB), so every non-empty subset of the universe is
        # a legal augmentation.
        for addition in _subsets(universe, include_empty=False):
            augmented = FunctionalDependency(dep.lhs | addition, dep.rhs | addition)
            if augmented != dep:
                yield augmented, (dep,)


def _rule_fd_transitivity(known, universe):
    fds = [d for d in known if isinstance(d, FunctionalDependency)]
    for first in fds:
        for second in fds:
            if first.rhs == second.lhs:
                yield FunctionalDependency(first.lhs, second.rhs), (first, second)


RULE_PROJECTIVITY = InferenceRule("A1 projectivity", _rule_projectivity)
RULE_ADDITIVITY = InferenceRule("A2 additivity", _rule_additivity)
RULE_AD_REFLEXIVITY = InferenceRule("A3 reflexivity", _rule_ad_reflexivity)
RULE_LEFT_AUGMENTATION = InferenceRule("A4 left augmentation", _rule_left_augmentation)
RULE_SUBSUMPTION = InferenceRule("AF1 subsumption", _rule_subsumption)
RULE_COMBINED_TRANSITIVITY = InferenceRule("AF2 combined transitivity", _rule_combined_transitivity)
RULE_FD_REFLEXIVITY = InferenceRule("F1 reflexivity", _rule_fd_reflexivity)
RULE_FD_AUGMENTATION = InferenceRule("F2 augmentation", _rule_fd_augmentation)
RULE_FD_TRANSITIVITY = InferenceRule("F3 transitivity", _rule_fd_transitivity)


class AxiomSystem:
    """A named collection of inference rules."""

    def __init__(self, name: str, rules: Sequence[InferenceRule], combined: bool):
        self.name = name
        self.rules = list(rules)
        #: whether the system handles functional dependencies (Å* does, Å does not)
        self.combined = combined

    def without(self, rule_name: str) -> "AxiomSystem":
        """A copy of the system with one rule removed (for non-redundancy studies)."""
        remaining = [r for r in self.rules if r.name != rule_name]
        if len(remaining) == len(self.rules):
            raise DerivationError("no rule named {!r} in {}".format(rule_name, self.name))
        return AxiomSystem("{} \\ {{{}}}".format(self.name, rule_name), remaining, self.combined)

    def rule_names(self) -> List[str]:
        return [rule.name for rule in self.rules]

    def __repr__(self) -> str:
        return "AxiomSystem({!r}, rules={})".format(self.name, self.rule_names())


#: the pure attribute-dependency system Å of Theorem 4.1
AXIOM_SYSTEM_AD = AxiomSystem(
    "Å",
    [RULE_PROJECTIVITY, RULE_ADDITIVITY, RULE_AD_REFLEXIVITY, RULE_LEFT_AUGMENTATION],
    combined=False,
)

#: the combined system Å* of Theorem 4.2
AXIOM_SYSTEM_COMBINED = AxiomSystem(
    "Å*",
    [
        RULE_SUBSUMPTION,
        RULE_COMBINED_TRANSITIVITY,
        RULE_PROJECTIVITY,
        RULE_ADDITIVITY,
        RULE_FD_REFLEXIVITY,
        RULE_FD_AUGMENTATION,
        RULE_FD_TRANSITIVITY,
    ],
    combined=True,
)


# -- forward chaining --------------------------------------------------------------------------------


def forward_chain(
    dependencies: Iterable[Dependency],
    universe=None,
    system: AxiomSystem = AXIOM_SYSTEM_COMBINED,
    max_rounds: int = 10,
    max_dependencies: int = 20_000,
) -> Set[Dependency]:
    """Saturate a dependency set under the rules of ``system``.

    The attribute universe defaults to the attributes mentioned by the input
    dependencies.  Intended for *small* universes (≤ 6 attributes): rules such as
    reflexivity and augmentation enumerate subsets of the universe.  The caps on
    rounds and on the number of produced dependencies guard against blow-up; hitting
    a cap raises :class:`DerivationError` so experiments never silently truncate.
    """
    dependencies = list(dependencies)
    fds, ads = split_dependencies(dependencies)
    known: Set[Dependency] = set(fds) | set(ads)
    if universe is None:
        universe = AttributeSet()
        for dependency in known:
            universe = universe | dependency.attributes
    else:
        universe = attrset(universe)
    for _ in range(max_rounds):
        added = False
        for rule in system.rules:
            for conclusion, _premises in rule.instantiate(sorted(known, key=repr), universe):
                if conclusion not in known:
                    known.add(conclusion)
                    added = True
                    if len(known) > max_dependencies:
                        raise DerivationError(
                            "forward chaining exceeded {} dependencies; "
                            "use a smaller universe".format(max_dependencies)
                        )
        if not added:
            return known
    raise DerivationError("forward chaining did not reach a fixpoint in {} rounds".format(max_rounds))


def chain_derives(
    dependencies: Iterable[Dependency],
    target: Dependency,
    system: AxiomSystem = AXIOM_SYSTEM_COMBINED,
    universe=None,
    max_rounds: int = 10,
) -> bool:
    """Decide derivability by saturation (slow path; supports rule-dropped systems)."""
    if isinstance(target, ExplicitAttributeDependency):
        target = target.to_ad()
    universe = attrset(universe) if universe is not None else None
    if universe is None:
        universe = target.attributes
        for dependency in dependencies:
            universe = universe | dependency.attributes
    closure_set = forward_chain(dependencies, universe=universe, system=system,
                                max_rounds=max_rounds)
    return target in closure_set


# -- constructive derivation with proof traces ------------------------------------------------------------


def derive(
    dependencies: Iterable[Dependency],
    target: Dependency,
    system: AxiomSystem = AXIOM_SYSTEM_COMBINED,
) -> Optional[DerivationTrace]:
    """Produce a proof trace for ``target`` from ``dependencies``, or ``None``.

    The trace follows the canonical constructions of the completeness proof: a
    functional-closure derivation for FD (sub)goals, then projectivity /
    (combined) transitivity / additivity for the AD goal.  Only the two full systems
    are supported here — rule-dropped systems must use :func:`chain_derives`.
    """
    dependencies = list(dependencies)
    fds, ads = split_dependencies(dependencies)
    combined = system.combined
    if isinstance(target, ExplicitAttributeDependency):
        target = target.to_ad()

    if isinstance(target, FunctionalDependency):
        if not combined:
            raise DerivationError("system Å cannot derive functional dependencies")
        if not target.rhs.issubset(functional_closure(target.lhs, fds)):
            return None
        steps = _fd_proof(target.lhs, target.rhs, fds)
        return DerivationTrace(target, steps, dependencies)

    if not isinstance(target, AttributeDependency):
        raise DerivationError("cannot derive {!r}".format(target))

    if not target.rhs.issubset(attribute_closure(target.lhs, dependencies, combined=combined)):
        return None

    steps: List[DerivationStep] = []
    x_func = functional_closure(target.lhs, fds) if combined else target.lhs
    per_attribute: List[AttributeDependency] = []

    if not target.rhs:
        # X --attr--> ∅ follows from reflexivity alone.
        conclusion = AttributeDependency(target.lhs, AttributeSet())
        rule = "F1 reflexivity" if combined else "A3 reflexivity"
        steps.append(DerivationStep(rule, (), FunctionalDependency(target.lhs, AttributeSet())
                                    if combined else conclusion))
        if combined:
            steps.append(DerivationStep("AF1 subsumption", (steps[-1].conclusion,), conclusion))
        return DerivationTrace(target, steps, dependencies)

    for attribute in target.rhs:
        single = AttributeSet(attribute)
        goal = AttributeDependency(target.lhs, single)
        if attribute in target.lhs:
            if combined:
                fd_goal = FunctionalDependency(target.lhs, single)
                steps.append(DerivationStep("F1 reflexivity", (), fd_goal))
                steps.append(DerivationStep("AF1 subsumption", (fd_goal,), goal))
            else:
                steps.append(DerivationStep("A3 reflexivity", (), goal))
            per_attribute.append(goal)
            continue
        if combined and attribute in x_func:
            fd_goal = FunctionalDependency(target.lhs, single)
            steps.extend(_fd_proof(target.lhs, single, fds))
            steps.append(DerivationStep("AF1 subsumption", (fd_goal,), goal))
            per_attribute.append(goal)
            continue
        source = _find_source(ads, attribute, x_func)
        if source is None:
            return None
        projected = AttributeDependency(source.lhs, single)
        if projected != source:
            steps.append(DerivationStep("A1 projectivity", (source,), projected))
        if source.lhs == target.lhs:
            if projected != goal:
                steps.append(DerivationStep("A1 projectivity", (source,), goal))
            per_attribute.append(goal)
            continue
        if combined:
            fd_goal = FunctionalDependency(target.lhs, source.lhs)
            steps.extend(_fd_proof(target.lhs, source.lhs, fds))
            steps.append(DerivationStep("AF2 combined transitivity", (fd_goal, projected), goal))
        else:
            if not source.lhs.issubset(target.lhs):
                return None
            steps.append(DerivationStep("A4 left augmentation", (projected,), goal))
        per_attribute.append(goal)

    accumulated = per_attribute[0]
    for nxt in per_attribute[1:]:
        combined_dep = AttributeDependency(target.lhs, accumulated.rhs | nxt.rhs)
        steps.append(DerivationStep("A2 additivity", (accumulated, nxt), combined_dep))
        accumulated = combined_dep
    if accumulated.rhs != target.rhs:
        steps.append(DerivationStep("A1 projectivity", (accumulated,), target))
    return DerivationTrace(target, steps, dependencies)


def _find_source(ads: Sequence[AttributeDependency], attribute, determining: AttributeSet):
    """Find a hypothesis AD whose left side is available and whose right side covers ``attribute``."""
    for dependency in ads:
        if dependency.lhs.issubset(determining) and attribute in dependency.rhs:
            return dependency
    return None


def _fd_proof(lhs: AttributeSet, rhs: AttributeSet, fds: Sequence[FunctionalDependency]) -> List[DerivationStep]:
    """Canonical FD derivation of ``lhs --func--> rhs`` using F1/F2/F3.

    Maintains a proven dependency ``lhs --func--> C`` (starting from reflexivity with
    ``C = lhs``) and grows ``C`` one hypothesis FD at a time:

    1. ``C --func--> V``     (F1 reflexivity, since ``V ⊆ C``)
    2. ``lhs --func--> V``   (F3 transitivity)
    3. ``V∪C --func--> W∪C`` (F2 augmentation of the hypothesis ``V --func--> W``)
    4. ``lhs --func--> W∪C`` (F3 transitivity with ``lhs --func--> C``, noting V∪C = C)
    5. finally project to ``rhs`` via reflexivity + transitivity.
    """
    steps: List[DerivationStep] = []
    current = FunctionalDependency(lhs, lhs)
    steps.append(DerivationStep("F1 reflexivity", (), current))
    covered = attrset(lhs)
    progress = True
    while not rhs.issubset(covered) and progress:
        progress = False
        for hypothesis in fds:
            if hypothesis.lhs.issubset(covered) and not hypothesis.rhs.issubset(covered):
                refl = FunctionalDependency(covered, hypothesis.lhs)
                steps.append(DerivationStep("F1 reflexivity", (), refl))
                to_lhs = FunctionalDependency(lhs, hypothesis.lhs)
                steps.append(DerivationStep("F3 transitivity", (current, refl), to_lhs))
                augmented = FunctionalDependency(hypothesis.lhs | covered, hypothesis.rhs | covered)
                steps.append(DerivationStep("F2 augmentation", (hypothesis,), augmented))
                new_current = FunctionalDependency(lhs, hypothesis.rhs | covered)
                steps.append(DerivationStep("F3 transitivity", (current, augmented), new_current))
                current = new_current
                covered = covered | hypothesis.rhs
                progress = True
                break
    if not rhs.issubset(covered):
        raise DerivationError(
            "internal error: {} is not in the functional closure of {}".format(rhs, lhs)
        )
    if current.rhs != rhs:
        refl = FunctionalDependency(covered, rhs)
        steps.append(DerivationStep("F1 reflexivity", (), refl))
        final = FunctionalDependency(lhs, rhs)
        steps.append(DerivationStep("F3 transitivity", (current, refl), final))
    return steps
