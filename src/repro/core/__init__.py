"""The paper's primary contribution: attribute dependencies and their theory.

Exports the dependency classes (explicit ADs, ADs, FDs), the closure and implication
machinery, the axiom systems Å and Å* with proof traces, the AD-based subtyping
constructions of Section 3.2, the propagation rules of Theorem 4.3, and dependency
discovery over instances.
"""

from repro.core.dependencies import (
    AttributeDependency,
    Dependency,
    ExplicitAttributeDependency,
    FunctionalDependency,
    Variant,
    ad,
    ead,
    fd,
)
from repro.core.closure import (
    attribute_closure,
    functional_closure,
    implies,
    implies_all,
    minimal_cover,
)
from repro.core.axioms import (
    AXIOM_SYSTEM_AD,
    AXIOM_SYSTEM_COMBINED,
    AxiomSystem,
    DerivationStep,
    DerivationTrace,
    InferenceRule,
    derive,
    forward_chain,
)
from repro.core.implication import (
    counterexample_relation,
    random_satisfying_relation,
    semantically_implies,
)
from repro.core.propagation import (
    propagate_difference,
    propagate_product,
    propagate_projection,
    propagate_selection,
    propagate_tagged_union,
    propagate_union,
)
from repro.core.subtyping import (
    SubtypeFamily,
    derive_subtype_family,
    lost_connection,
)
from repro.core.inference import discover_ads, discover_fds

__all__ = [
    "Dependency",
    "AttributeDependency",
    "ExplicitAttributeDependency",
    "FunctionalDependency",
    "Variant",
    "ad",
    "ead",
    "fd",
    "attribute_closure",
    "functional_closure",
    "implies",
    "implies_all",
    "minimal_cover",
    "AxiomSystem",
    "AXIOM_SYSTEM_AD",
    "AXIOM_SYSTEM_COMBINED",
    "InferenceRule",
    "DerivationStep",
    "DerivationTrace",
    "derive",
    "forward_chain",
    "counterexample_relation",
    "random_satisfying_relation",
    "semantically_implies",
    "propagate_product",
    "propagate_projection",
    "propagate_selection",
    "propagate_union",
    "propagate_difference",
    "propagate_tagged_union",
    "SubtypeFamily",
    "derive_subtype_family",
    "lost_connection",
    "discover_ads",
    "discover_fds",
]
