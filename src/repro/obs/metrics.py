"""Process-wide metrics: counters, gauges, histograms, Q-error, slow queries.

A :class:`MetricsRegistry` lives on every :class:`~repro.engine.Database` and
aggregates across queries: how many ran, how many rows were scanned and
joined, how the plan cache is doing, which batch sizes the adaptive sizing
picked, the per-query latency distribution, and — the feedback signal ROADMAP
item 4 (adaptive re-optimization) is built on — the worst observed *Q-error*
per plan-node kind.

Q-error is the standard estimate-quality measure from the cardinality
estimation literature: ``max(est/actual, actual/est)``, i.e. the factor by
which the optimizer's row estimate was off, symmetric in direction.  A
Q-error of 1.0 is a perfect estimate; 100 means two orders of magnitude off
(in either direction).  Edge cases are pinned down by :func:`q_error` and
tested in ``tests/test_observability.py``.

Everything here is plain arithmetic on a handful of dicts — no locks, no
clock reads (latency observations are *handed in* by the caller), no
per-tuple work — so the registry can stay always-on without showing up in the
E15 overhead gate.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple


def q_error(estimated: Optional[float], actual: float) -> Optional[float]:
    """The Q-error ``max(est/actual, actual/est)`` of a cardinality estimate.

    * ``estimated is None`` (the planner had no estimate) → ``None``;
    * both zero → ``1.0`` (predicting an empty result that was empty is perfect);
    * exactly one of them zero → ``inf`` (no finite factor relates 0 and n>0);
    * otherwise the symmetric ratio, always ≥ 1.0.
    """
    if estimated is None:
        return None
    est = float(estimated)
    act = float(actual)
    if est == 0.0 and act == 0.0:
        return 1.0
    if est <= 0.0 or act <= 0.0:
        return math.inf
    return max(est / act, act / est)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self):
        return self.value


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self):
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self):
        return self.value


class MaxGauge:
    """Tracks the maximum value observed (e.g. worst Q-error per node kind)."""

    __slots__ = ("value", "count")

    def __init__(self):
        self.value: Optional[float] = None
        self.count = 0

    def observe(self, value: Optional[float]) -> None:
        if value is None:
            return
        self.count += 1
        if self.value is None or value > self.value:
            self.value = value

    def as_dict(self):
        return {"max": self.value, "observations": self.count}


#: histogram bucket upper bounds for per-query latency, in seconds
LATENCY_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
                   5.0, 30.0)

#: histogram bucket upper bounds for chosen batch sizes, in tuples
BATCH_SIZE_BUCKETS = (16, 64, 256, 1024, 4096, 16384, 65536)

#: histogram bucket upper bounds for per-query peak operator memory, in bytes
#: (1KiB … 256MiB in factor-4 steps; above that the overflow bucket catches it)
MEMORY_BUCKETS = (1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20,
                  1 << 22, 1 << 24, 1 << 26, 1 << 28)


class Histogram:
    """Fixed-bound bucketed distribution with count/sum/min/max.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; the implicit
    final bucket (``bucket_counts[len(bounds)]``) is the +inf overflow.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "minimum",
                 "maximum")

    def __init__(self, bounds: Sequence[float]):
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    @property
    def sum(self) -> float:
        """The running sum of observations — the Prometheus ``_sum`` series."""
        return self.total

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile: the upper bound of the bucket holding rank q.

        Overflow-bucket hits report the observed maximum (the only finite
        upper bound available for them).
        """
        if not self.count:
            return None
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index, bucket in enumerate(self.bucket_counts):
            seen += bucket
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.maximum
        return self.maximum

    def as_dict(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": {
                **{str(bound): self.bucket_counts[i]
                   for i, bound in enumerate(self.bounds)},
                "inf": self.bucket_counts[-1],
            },
        }


class MetricsRegistry:
    """Named counters/gauges/histograms with a JSON-friendly snapshot.

    Instruments are created on first use (``registry.counter("queries.executed")``)
    and keyed by dotted name; asking for an existing name returns the same
    instrument, asking for it with a different type raises.
    """

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls, factory=None):
        """The instrument registered under ``name``, created on first use.

        ``cls`` is the expected instrument class; a request that reaches an
        existing instrument of a different class is a programming error and
        raises ``TypeError`` naming both kinds (silently returning the wrong
        instrument would corrupt whichever series asked second).
        """
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = (factory or cls)()
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                "metric {!r} is already registered as {}, cannot reopen it "
                "as {}".format(name, type(instrument).__name__, cls.__name__))
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def max_gauge(self, name: str) -> MaxGauge:
        return self._get(name, MaxGauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(bounds))

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, object]:
        """Every instrument's current value, keyed by name, JSON-serializable."""
        return {name: instrument.as_dict()
                for name, instrument in sorted(self._instruments.items())}

    def reset(self) -> None:
        self._instruments.clear()

    def __repr__(self) -> str:
        return "MetricsRegistry({} instruments)".format(len(self._instruments))


class SlowQueryEntry:
    """One slow-query-log record (see :class:`SlowQueryLog`)."""

    __slots__ = ("expression", "mode", "seconds", "rows", "q_error_nodes",
                 "note")

    def __init__(self, expression: str, mode: str, seconds: float, rows: int,
                 q_error_nodes: List[Tuple[str, Optional[float]]],
                 note: Optional[str] = None):
        self.expression = expression
        self.mode = mode
        self.seconds = seconds
        self.rows = rows
        #: top (worst-first) ``(operator label, q_error)`` pairs of the plan
        self.q_error_nodes = q_error_nodes
        #: why the entry exists beyond raw latency (e.g. a plan regression)
        self.note = note

    def as_dict(self) -> Dict[str, object]:
        payload = {
            "expression": self.expression,
            "mode": self.mode,
            "seconds": self.seconds,
            "rows": self.rows,
            "q_error_nodes": [
                {"operator": label, "q_error": value}
                for label, value in self.q_error_nodes
            ],
        }
        if self.note is not None:
            payload["note"] = self.note
        return payload

    def __repr__(self) -> str:
        return "SlowQueryEntry({:.4f}s, mode={}, {})".format(
            self.seconds, self.mode, self.expression)


class SlowQueryLog:
    """Bounded log of queries slower than a configurable threshold.

    ``threshold`` is in seconds; queries at or above it are recorded with
    their expression, plan mode, latency, row count, and the top-3 worst
    Q-error plan nodes — the diagnostic trail for "why was this slow":
    usually a mis-estimate upstream of a bad join choice.  The log keeps the
    most recent ``capacity`` entries; ``total`` counts every slow query ever
    seen, including evicted ones.
    """

    def __init__(self, threshold: float = 1.0, capacity: int = 32):
        self.threshold = float(threshold)
        self.capacity = int(capacity)
        self._entries: Deque[SlowQueryEntry] = deque(maxlen=self.capacity)
        self.total = 0

    def observe(self, expression: str, mode: str, seconds: float, rows: int,
                q_error_nodes: Sequence[Tuple[str, Optional[float]]]) -> Optional[SlowQueryEntry]:
        """Record the query if it crossed the threshold; returns the entry."""
        if seconds < self.threshold:
            return None
        return self.record(expression, mode, seconds, rows, q_error_nodes)

    def record(self, expression: str, mode: str, seconds: float, rows: int,
               q_error_nodes: Sequence[Tuple[str, Optional[float]]] = (),
               note: Optional[str] = None) -> SlowQueryEntry:
        """Record unconditionally — used by the plan-regression watchdog,
        whose entries matter regardless of the latency threshold."""
        ranked = sorted(
            (pair for pair in q_error_nodes if pair[1] is not None),
            key=lambda pair: pair[1], reverse=True)[:3]
        entry = SlowQueryEntry(expression, mode, seconds, rows, list(ranked),
                               note=note)
        self._entries.append(entry)
        self.total += 1
        return entry

    def entries(self) -> List[SlowQueryEntry]:
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.total = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "total": self.total,
            "entries": [entry.as_dict() for entry in self._entries],
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return "SlowQueryLog(threshold={}, kept={}, total={})".format(
            self.threshold, len(self._entries), self.total)
