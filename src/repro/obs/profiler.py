"""Plan-regression watchdog and workload profiling windows.

The watchdog closes the second observability gap named by ROADMAP item 4:
an engine that re-plans on statistics refreshes and feedback updates can
silently swap a good plan for a bad one.  :class:`PlanWatchdog` keeps a small
per-query-fingerprint history — the last plan fingerprint and a latency
EWMA — and turns two situations into structured events:

* **plan change** — the plan fingerprint for a known query flipped (a stats
  version bump or a feedback entry re-ordered the joins): records a plan-diff
  event carrying the before/after operator order and estimated cost, so a
  later regression can be attributed to the exact change;
* **plan regression** — latency regressed more than ``regression_factor``
  (default 2×) against the fingerprint's EWMA baseline: emits a
  ``plan-regression`` event naming the suspect plan change (if any) so the
  slow-log entry reads as a diagnosis, not just a timing.

:class:`WorkloadProfile` is the capture side of ``Database.profile()``: a
context manager that windows a workload — every query with its mode, latency,
rows and peak memory, plus the feedback/plan-change/regression deltas over the
window — into one report dict the benchmark reporting layer can embed.
"""

from typing import Dict, List, Optional

__all__ = ["PlanWatchdog", "QueryBaseline", "WorkloadProfile"]

#: default latency-regression threshold: >2× the EWMA baseline
DEFAULT_REGRESSION_FACTOR = 2.0

#: EWMA smoothing weight for the per-fingerprint latency baseline
DEFAULT_EWMA_ALPHA = 0.3

#: executions of a fingerprint before regressions are judged (the first few
#: runs *establish* the baseline; judging them against it would self-trigger)
MIN_BASELINE_SAMPLES = 3


class QueryBaseline:
    """Per-query-fingerprint history: last plan + latency EWMA/peak."""

    __slots__ = ("plan_fingerprint", "plan_summary", "ewma_seconds",
                 "worst_seconds", "executions", "last_plan_change")

    def __init__(self, plan_fingerprint, plan_summary):
        self.plan_fingerprint = plan_fingerprint
        #: human-readable plan description (operator order, estimated cost)
        self.plan_summary = plan_summary
        self.ewma_seconds: Optional[float] = None
        self.worst_seconds = 0.0
        self.executions = 0
        #: the most recent plan-change event for this query, if any —
        #: the "suspect" a later regression is attributed to
        self.last_plan_change: Optional[Dict[str, object]] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "plan": self.plan_summary,
            "ewma_seconds": self.ewma_seconds,
            "worst_seconds": self.worst_seconds,
            "executions": self.executions,
        }


class PlanWatchdog:
    """Detects plan flips and latency regressions per query fingerprint."""

    def __init__(self, regression_factor: float = DEFAULT_REGRESSION_FACTOR,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA,
                 capacity: int = 256):
        self.regression_factor = float(regression_factor)
        self.ewma_alpha = float(ewma_alpha)
        self.capacity = int(capacity)
        self._baselines: Dict[object, QueryBaseline] = {}
        self._plan_changes: List[Dict[str, object]] = []
        self._regressions: List[Dict[str, object]] = []

    def observe(self, query_fingerprint, plan_fingerprint, plan_summary,
                seconds: float):
        """Fold one execution in; returns (plan_change, regression) events.

        Either element is ``None`` when nothing noteworthy happened.  The
        caller (``Database._observe_query``) owns turning the returned event
        dicts into trace events and slow-log entries.
        """
        baseline = self._baselines.get(query_fingerprint)
        if baseline is None:
            if len(self._baselines) >= self.capacity:
                # Drop the least-recently inserted history wholesale: the
                # watchdog is a diagnostic, not a system of record.
                self._baselines.pop(next(iter(self._baselines)))
            baseline = QueryBaseline(plan_fingerprint, plan_summary)
            self._baselines[query_fingerprint] = baseline

        plan_change = None
        if baseline.plan_fingerprint != plan_fingerprint:
            plan_change = {
                "event": "plan-change",
                "before": baseline.plan_summary,
                "after": plan_summary,
                "baseline_seconds": baseline.ewma_seconds,
            }
            self._plan_changes.append(plan_change)
            baseline.last_plan_change = plan_change
            baseline.plan_fingerprint = plan_fingerprint
            baseline.plan_summary = plan_summary

        regression = None
        if (baseline.executions >= MIN_BASELINE_SAMPLES
                and baseline.ewma_seconds is not None
                and seconds > self.regression_factor * baseline.ewma_seconds):
            suspect = baseline.last_plan_change
            regression = {
                "event": "plan-regression",
                "seconds": seconds,
                "baseline_seconds": baseline.ewma_seconds,
                "factor": seconds / baseline.ewma_seconds,
                "plan": plan_summary,
                "suspect_plan_change": suspect,
            }
            self._regressions.append(regression)

        baseline.executions += 1
        baseline.worst_seconds = max(baseline.worst_seconds, seconds)
        if baseline.ewma_seconds is None:
            baseline.ewma_seconds = seconds
        else:
            alpha = self.ewma_alpha
            baseline.ewma_seconds = (alpha * seconds
                                     + (1.0 - alpha) * baseline.ewma_seconds)
        return plan_change, regression

    def plan_changes(self) -> List[Dict[str, object]]:
        return list(self._plan_changes)

    def regressions(self) -> List[Dict[str, object]]:
        return list(self._regressions)

    def baseline(self, query_fingerprint) -> Optional[QueryBaseline]:
        return self._baselines.get(query_fingerprint)

    def clear(self) -> None:
        self._baselines.clear()
        self._plan_changes.clear()
        self._regressions.clear()

    def as_dict(self) -> Dict[str, object]:
        return {
            "tracked_queries": len(self._baselines),
            "plan_changes": len(self._plan_changes),
            "regressions": len(self._regressions),
        }

    def __repr__(self) -> str:
        return "PlanWatchdog(tracked={}, changes={}, regressions={})".format(
            len(self._baselines), len(self._plan_changes),
            len(self._regressions))


class WorkloadProfile:
    """A ``with database.profile() as prof:`` workload capture window.

    While active, ``Database._observe_query`` hands every query to
    :meth:`observe`; on exit the window freezes into :attr:`report` — queries
    with plans/latencies/memory, the feedback-store delta, and the plan
    changes and regressions that happened inside the window.
    """

    def __init__(self, database):
        self._database = database
        self._queries: List[Dict[str, object]] = []
        self._start_feedback = None
        self._start_changes = 0
        self._start_regressions = 0
        self.report: Optional[Dict[str, object]] = None

    def __enter__(self) -> "WorkloadProfile":
        database = self._database
        self._start_feedback = database.cardinality_feedback.as_dict()
        watchdog = database.plan_watchdog
        self._start_changes = len(watchdog.plan_changes())
        self._start_regressions = len(watchdog.regressions())
        database._active_profile = self
        return self

    def observe(self, record: Dict[str, object]) -> None:
        self._queries.append(record)

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        database = self._database
        database._active_profile = None
        watchdog = database.plan_watchdog
        end_feedback = database.cardinality_feedback.as_dict()
        self.report = {
            "queries": list(self._queries),
            "query_count": len(self._queries),
            "total_seconds": sum(q["seconds"] for q in self._queries),
            "feedback": {
                "before": self._start_feedback,
                "after": end_feedback,
                "new_entries": (end_feedback["entries"]
                                - self._start_feedback["entries"]),
            },
            "plan_changes": watchdog.plan_changes()[self._start_changes:],
            "regressions": watchdog.regressions()[self._start_regressions:],
            "metrics": database.metrics(),
        }
        return False
