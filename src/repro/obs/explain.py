"""EXPLAIN ANALYZE: the executed plan annotated with what actually happened.

``Database.explain_analyze(expr)`` runs the query for real (identical results
and counters to ``execute`` — asserted by ``tests/test_observability.py``) and
renders the physical plan tree with, per node:

* ``actual_rows`` next to the planner's ``est_rows``,
* the **Q-error** ``max(est/actual, actual/est)`` of that estimate
  (see :func:`repro.obs.metrics.q_error` for the edge cases),
* wall-clock time spent in the operator (inclusive of its children, as in
  PostgreSQL's EXPLAIN ANALYZE — ticked per batch, see
  :mod:`repro.exec.operators`),
* the number of batches it emitted, and
* ``mem=`` — the sampled peak bytes of materialized state (hash builds,
  multiway drains, difference/product materializations); omitted for
  streaming operators that never hold more than one batch.

The pairing of plan nodes with run-time counters relies on a structural
invariant of the execution layer: ``PhysicalOperator.run`` registers its
:class:`~repro.exec.context.OperatorStats` in **preorder** (self before
children, children left to right), so the context's registration order equals
a preorder walk of the plan tree and the two line up positionally — no name
matching, no back-pointers from operators into contexts.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.exec.context import OperatorStats
from repro.obs.metrics import q_error


def plan_nodes(plan) -> List[object]:
    """The plan's operators in preorder — the order ``run()`` registers stats."""
    nodes: List[object] = []
    pending = [plan.root]
    while pending:
        node = pending.pop()
        nodes.append(node)
        pending.extend(reversed(node.children))
    return nodes


def pair_nodes_with_stats(plan, context) -> List[Tuple[object, Optional[OperatorStats]]]:
    """Zip plan nodes with their executed :class:`OperatorStats`, positionally.

    A plan that was never executed under ``context`` (or a hand-built context)
    yields ``None`` stats for the unmatched tail rather than mispairing.
    """
    nodes = plan_nodes(plan)
    stats = context.operator_stats
    paired: List[Tuple[object, Optional[OperatorStats]]] = []
    for index, node in enumerate(nodes):
        op_stats = stats[index] if index < len(stats) else None
        if op_stats is not None and op_stats.label != node.label():
            # The positional invariant broke (someone executed a different
            # plan under this context); refuse to annotate with wrong numbers.
            op_stats = None
        paired.append((node, op_stats))
    return paired


def node_q_errors(plan, context) -> List[Tuple[str, Optional[float]]]:
    """Per-node ``(label, q_error)`` pairs for an executed plan, preorder."""
    result = []
    for node, op_stats in pair_nodes_with_stats(plan, context):
        if op_stats is None:
            result.append((node.label(), None))
        else:
            result.append((node.label(),
                           q_error(node.estimated_rows, op_stats.rows_out)))
    return result


def _format_q(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if math.isinf(value):
        return "inf"
    return "{:.2f}".format(value)


def _format_ms(seconds: float) -> str:
    return "{:.3f}ms".format(seconds * 1000.0)


def _format_bytes(size: int) -> str:
    """Human-scaled byte count (1 decimal from KiB up): 512B, 3.4KiB, 1.2MiB."""
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            if unit == "B":
                return "{:.0f}B".format(value)
            return "{:.1f}{}".format(value, unit)
        value /= 1024.0
    return "{:.1f}GiB".format(value)  # pragma: no cover — loop always returns


def render_explain_analyze(plan, result, header: str = "") -> str:
    """The annotated plan tree as a multi-line string.

    ``result`` is the :class:`~repro.exec.planner.PhysicalResult` of executing
    ``plan``; its context supplies the per-operator counters.  Join-search
    reports (when the planner reordered an n-way join) render above the tree,
    exactly as in ``plan.explain()``.
    """
    lines: List[str] = []
    if header:
        lines.append(header)
    lines.extend(report.describe() for report in plan.join_search)
    annotations = {id(node): op_stats
                   for node, op_stats in pair_nodes_with_stats(plan, result.context)}

    def render(node, indent: int) -> None:
        line = "  " * indent + node.label()
        if node.vectorized:
            line += "  [batch]"
        op_stats = annotations.get(id(node))
        if op_stats is not None:
            est = ("{:.1f}".format(node.estimated_rows)
                   if node.estimated_rows is not None else "-")
            line += ("  (actual_rows={} est_rows={} q={} time={} batches={}"
                     .format(op_stats.rows_out, est,
                             _format_q(q_error(node.estimated_rows,
                                               op_stats.rows_out)),
                             _format_ms(op_stats.wall_seconds),
                             op_stats.batches_out))
            if op_stats.peak_bytes:
                line += " mem={}".format(_format_bytes(op_stats.peak_bytes))
            line += ")"
        lines.append(line)
        for child in node.children:
            render(child, indent + 1)

    render(plan.root, 0)
    return "\n".join(lines)


class ExplainAnalyzeReport:
    """The product of ``Database.explain_analyze``: text + the real result.

    ``str(report)`` (or ``print(report)``) shows the annotated tree;
    ``report.result`` is the full :class:`~repro.exec.planner.PhysicalResult`
    (tuples, counters, per-operator breakdown) of the actual execution, and
    ``report.q_errors`` the per-node estimate quality the adaptive layer will
    feed on.
    """

    def __init__(self, plan, result, text: str):
        self.plan = plan
        self.result = result
        self.text = text

    @property
    def tuples(self):
        return self.result.tuples

    @property
    def q_errors(self) -> List[Tuple[str, Optional[float]]]:
        return node_q_errors(self.plan, self.result.context)

    def worst_q_error(self) -> Optional[float]:
        values = [q for _label, q in self.q_errors if q is not None]
        return max(values) if values else None

    def __str__(self) -> str:
        return self.text

    def __repr__(self) -> str:
        return "ExplainAnalyzeReport(rows={}, worst_q={})".format(
            len(self.result.tuples), _format_q(self.worst_q_error()))
