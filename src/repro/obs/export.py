"""Metrics export: Prometheus text exposition and versioned JSON snapshots.

The registry's instruments map onto the Prometheus exposition format
(https://prometheus.io/docs/instrumenting/exposition_formats/) as:

* :class:`~repro.obs.metrics.Counter` → a ``counter`` family named
  ``<name>_total``;
* :class:`~repro.obs.metrics.Gauge` → a ``gauge`` family (skipped while the
  gauge has never been set — Prometheus has no "no value yet" sample);
* :class:`~repro.obs.metrics.MaxGauge` → a ``gauge`` holding the observed
  maximum plus a ``<name>_observations_total`` counter;
* :class:`~repro.obs.metrics.Histogram` → a ``histogram`` family with
  cumulative ``_bucket{le="..."}`` samples (the registry stores per-bucket
  counts; the exporter accumulates), ``_sum`` and ``_count``.

Dotted registry names become underscore-separated metric names
(``queries.executed`` → ``repro_queries_executed_total``).

:func:`parse_prometheus_text` is the inverse used by the round-trip tests —
a deliberately strict parser for the subset this exporter emits, so a
formatting bug fails loudly instead of producing silently unscrapable output.
"""

import json
import math
import re
from typing import Dict, List, Optional, Tuple

from .metrics import Counter, Gauge, Histogram, MaxGauge, MetricsRegistry

__all__ = ["prometheus_text", "parse_prometheus_text", "json_snapshot",
           "SNAPSHOT_FORMAT", "SNAPSHOT_VERSION"]

#: identifies the JSON snapshot schema so downstream consumers can dispatch
SNAPSHOT_FORMAT = "repro-metrics"
#: bumped whenever the snapshot layout changes incompatibly
SNAPSHOT_VERSION = 1

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$")

_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def _metric_name(name: str, prefix: str) -> str:
    flattened = _NAME_SANITIZER.sub("_", name)
    return "{}_{}".format(prefix, flattened) if prefix else flattened


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """The registry rendered in the Prometheus text exposition format."""
    lines: List[str] = []
    for name in registry.names():
        instrument = registry._instruments[name]
        metric = _metric_name(name, prefix)
        if isinstance(instrument, Counter):
            lines.append("# TYPE {}_total counter".format(metric))
            lines.append("{}_total {}".format(metric,
                                              _format_value(instrument.value)))
        elif isinstance(instrument, MaxGauge):
            if instrument.value is not None:
                lines.append("# TYPE {} gauge".format(metric))
                lines.append("{} {}".format(metric,
                                            _format_value(instrument.value)))
            lines.append("# TYPE {}_observations_total counter".format(metric))
            lines.append("{}_observations_total {}".format(
                metric, _format_value(instrument.count)))
        elif isinstance(instrument, Gauge):
            if instrument.value is not None:
                lines.append("# TYPE {} gauge".format(metric))
                lines.append("{} {}".format(metric,
                                            _format_value(instrument.value)))
        elif isinstance(instrument, Histogram):
            lines.append("# TYPE {} histogram".format(metric))
            cumulative = 0
            for bound, count in zip(instrument.bounds,
                                    instrument.bucket_counts):
                cumulative += count
                lines.append('{}_bucket{{le="{}"}} {}'.format(
                    metric, _format_value(bound), _format_value(cumulative)))
            lines.append('{}_bucket{{le="+Inf"}} {}'.format(
                metric, _format_value(instrument.count)))
            lines.append("{}_sum {}".format(metric,
                                            _format_value(instrument.sum)))
            lines.append("{}_count {}".format(metric,
                                              _format_value(instrument.count)))
    return "\n".join(lines) + "\n" if lines else ""


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse an exposition back into ``{family: {"type", "samples"}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)`` triples.
    Raises ``ValueError`` on any line the exporter could not have produced.
    """
    families: Dict[str, Dict[str, object]] = {}
    current: Optional[Dict[str, object]] = None
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError("malformed TYPE line: {!r}".format(line))
            _hash, _type, family, kind = parts
            current = families.setdefault(family,
                                          {"type": kind, "samples": []})
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError("malformed sample line: {!r}".format(line))
        labels: Dict[str, str] = {}
        if match.group("labels"):
            for part in match.group("labels").split(","):
                label = _LABEL.match(part)
                if label is None:
                    raise ValueError("malformed label in {!r}".format(line))
                labels[label.group("key")] = label.group("value")
        sample_name = match.group("name")
        value = _parse_value(match.group("value"))
        family = _family_of(sample_name, families)
        if family is None:
            raise ValueError(
                "sample {!r} precedes its TYPE line".format(sample_name))
        families[family]["samples"].append((sample_name, labels, value))
    return families


def _family_of(sample_name: str,
               families: Dict[str, Dict[str, object]]) -> Optional[str]:
    """The declared family a sample belongs to (longest matching prefix)."""
    best = None
    for family in families:
        if sample_name == family or (
                sample_name.startswith(family)
                and sample_name[len(family)] == "_"):
            if best is None or len(family) > len(best):
                best = family
    return best


def json_snapshot(registry: MetricsRegistry, extra: Optional[dict] = None) -> dict:
    """A versioned, JSON-serializable snapshot of every instrument.

    The envelope carries a format tag and version so long-lived consumers
    (dashboards, the benchmark reporting layer) can detect schema drift;
    ``extra`` merges additional engine-level sections (plan cache, slow
    queries) into the envelope without touching the metrics namespace.
    """
    snapshot = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "metrics": registry.snapshot(),
        "types": {name: type(registry._instruments[name]).__name__
                  for name in registry.names()},
    }
    if extra:
        for key, value in extra.items():
            snapshot[key] = value
    return snapshot


def dumps_snapshot(registry: MetricsRegistry, **kwargs) -> str:
    """``json_snapshot`` rendered as a JSON string (``inf`` → ``"inf"``)."""
    def _default(value):
        return repr(value)
    return json.dumps(json_snapshot(registry, **kwargs), default=_default)
