"""Observability for the flexible-relations engine.

Three layers, all cheap-by-default (the E15 benchmark gates the whole package
at ≤5% overhead on vectorized plans):

* :mod:`repro.obs.trace` — structured spans/events over the query lifecycle
  (parse → rewrite → statistics → join-order search → planning → execution,
  plus plan-cache and ANALYZE events), off unless a sink is attached;
* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry` behind
  ``Database.metrics()``, the :func:`q_error` estimate-quality measure, and
  the threshold-configurable :class:`SlowQueryLog`;
* :mod:`repro.obs.explain` — ``Database.explain_analyze()``: the executed
  plan annotated per node with actual rows, Q-error, wall time and batches.

PR 7 adds the *actionable* layer on top of that substrate:

* :mod:`repro.obs.feedback` — the :class:`CardinalityFeedback` store that
  feeds observed cardinalities back into the cost model (ROADMAP item 4's
  adaptive re-optimization bridge);
* :mod:`repro.obs.profiler` — the :class:`PlanWatchdog` (plan-change and
  latency-regression detection) and :class:`WorkloadProfile` windows behind
  ``Database.profile()``;
* :mod:`repro.obs.export` — Prometheus text exposition and versioned JSON
  snapshots of the registry.
"""

from repro.obs.explain import (
    ExplainAnalyzeReport,
    node_q_errors,
    pair_nodes_with_stats,
    plan_nodes,
    render_explain_analyze,
)
from repro.obs.export import (
    json_snapshot,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.feedback import (
    CardinalityFeedback,
    referenced_tables,
)
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MaxGauge,
    MetricsRegistry,
    SlowQueryEntry,
    SlowQueryLog,
    q_error,
)
from repro.obs.profiler import (
    PlanWatchdog,
    QueryBaseline,
    WorkloadProfile,
)
from repro.obs.trace import (
    NOOP_SPAN,
    JsonTraceSink,
    Span,
    Tracer,
    TraceSink,
    tracer_of,
)

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "LATENCY_BUCKETS",
    "CardinalityFeedback",
    "Counter",
    "ExplainAnalyzeReport",
    "Gauge",
    "Histogram",
    "JsonTraceSink",
    "MaxGauge",
    "MetricsRegistry",
    "NOOP_SPAN",
    "PlanWatchdog",
    "QueryBaseline",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "TraceSink",
    "Tracer",
    "WorkloadProfile",
    "json_snapshot",
    "node_q_errors",
    "pair_nodes_with_stats",
    "parse_prometheus_text",
    "plan_nodes",
    "prometheus_text",
    "q_error",
    "referenced_tables",
    "render_explain_analyze",
    "tracer_of",
]
