"""Observability for the flexible-relations engine.

Three layers, all cheap-by-default (the E15 benchmark gates the whole package
at ≤5% overhead on vectorized plans):

* :mod:`repro.obs.trace` — structured spans/events over the query lifecycle
  (parse → rewrite → statistics → join-order search → planning → execution,
  plus plan-cache and ANALYZE events), off unless a sink is attached;
* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry` behind
  ``Database.metrics()``, the :func:`q_error` estimate-quality measure, and
  the threshold-configurable :class:`SlowQueryLog`;
* :mod:`repro.obs.explain` — ``Database.explain_analyze()``: the executed
  plan annotated per node with actual rows, Q-error, wall time and batches.

This is the measurement substrate for ROADMAP item 4 (adaptive
re-optimization): every estimate the planner makes is now compared against
what execution observed.
"""

from repro.obs.explain import (
    ExplainAnalyzeReport,
    node_q_errors,
    pair_nodes_with_stats,
    plan_nodes,
    render_explain_analyze,
)
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MaxGauge,
    MetricsRegistry,
    SlowQueryEntry,
    SlowQueryLog,
    q_error,
)
from repro.obs.trace import (
    NOOP_SPAN,
    JsonTraceSink,
    Span,
    Tracer,
    TraceSink,
    tracer_of,
)

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "LATENCY_BUCKETS",
    "Counter",
    "ExplainAnalyzeReport",
    "Gauge",
    "Histogram",
    "JsonTraceSink",
    "MaxGauge",
    "MetricsRegistry",
    "NOOP_SPAN",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "TraceSink",
    "Tracer",
    "node_q_errors",
    "pair_nodes_with_stats",
    "plan_nodes",
    "q_error",
    "render_explain_analyze",
    "tracer_of",
]
