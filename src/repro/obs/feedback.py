"""Cardinality feedback: observed row counts correct future estimates.

PR 6 made estimation errors *visible* (Q-error gauges, EXPLAIN ANALYZE); this
module makes them *actionable*.  After every instrumented execution the engine
folds each plan node's actual output cardinality into a
:class:`CardinalityFeedback` store keyed by ``(subexpression fingerprint,
statistics version)``.  The cost model consults the store before falling back
to histogram/NDV math, so the second execution of a query — and the join-order
search over all its subplans — prices every subexpression with observed truth
instead of stale or defaulted selectivities.

Two kinds of observation are kept.  **Cardinalities** correct the estimate of
a subexpression that has itself been executed.  **Join-edge selectivities**
(``rows_out / (rows_left × rows_right)`` of an executed mis-estimated join,
keyed by join attribute and the base tables carrying it) generalize further:
they correct candidate joins the order search prices but has never executed —
the signal that lets one bad run re-order the next one.

The store is deliberately ephemeral and self-invalidating:

* **bounded** — an LRU of :data:`DEFAULT_CAPACITY` entries; a long-lived
  session cannot grow it without limit;
* **DML-invalidated** — every entry remembers the base tables its
  subexpression reads, and :meth:`CardinalityFeedback.invalidate_table` drops
  the affected entries when one of them mutates (wired to
  ``StatisticsCatalog.note_mutation``);
* **ANALYZE-invalidated** — keys embed the statistics version, so a fresh
  ANALYZE strands old entries (they age out of the LRU) rather than letting
  observations from a different statistics regime leak into new estimates;
* **never persisted** — ``engine/serialization`` does not know about it; a
  reloaded database starts with an empty store.

``version`` increments whenever the store learns something new (an entry
appears or changes value), and the executor mixes it into the plan-cache key:
fresh feedback forces a re-plan, unchanged feedback keeps the cache hot.
"""

from collections import OrderedDict
from typing import Optional, Tuple

from ..algebra.expressions import (
    Aggregate,
    EmptyRelation,
    Expression,
    Extension,
    Limit,
    MultiwayJoin,
    NaturalJoin,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Sort,
    SubqueryExtension,
    TypeGuardNode,
)
from ..model.attributes import attrset

__all__ = ["CardinalityFeedback", "DEFAULT_CAPACITY", "EDGE_TOLERANCE",
           "QERROR_THRESHOLD", "attribute_carriers", "expression_key",
           "referenced_tables"]

#: default LRU capacity; generous for a workload of repeated query shapes while
#: keeping the worst-case memory footprint trivially small.
DEFAULT_CAPACITY = 512

#: only observations this far off the estimate (Q-error, ≥ 1.0) are folded in:
#: feedback stores *corrections*, not confirmations.  An accurate estimate
#: leaves no entry behind, so the store's version — and with it the plan
#: cache — only moves when re-planning could actually choose differently.
QERROR_THRESHOLD = 2.0

#: relative tolerance below which a re-observed edge selectivity counts as
#: unchanged (row-count jitter between executions must not churn the version)
EDGE_TOLERANCE = 0.05


def expression_key(expression: Expression) -> Tuple:
    """A hashable structural key identifying an expression tree.

    Two expressions with the same key produce the same physical plan, so the
    key (together with the catalog version) is safe to use as a plan-cache
    key — and, paired with the statistics version, as the cardinality-feedback
    fingerprint shared by the planner and the cost model.  Predicates
    contribute their ``repr``, which is deterministic for the whole predicate
    language.  (Historically lived in :mod:`repro.exec.planner`, which still
    re-exports it; it sits here so the optimizer can fingerprint
    subexpressions without importing the planner.)
    """
    if isinstance(expression, RelationRef):
        return ("relation", expression.name)
    if isinstance(expression, EmptyRelation):
        return ("empty",)
    if isinstance(expression, Selection):
        return ("select", repr(expression.predicate), expression_key(expression.child))
    if isinstance(expression, TypeGuardNode):
        return ("guard", str(expression.attributes), expression_key(expression.child))
    if isinstance(expression, Projection):
        return ("project", str(expression.attributes), expression_key(expression.child))
    if isinstance(expression, Extension):
        return ("extend", expression.attribute, repr(expression.value),
                expression_key(expression.child))
    if isinstance(expression, Rename):
        return ("rename", tuple(sorted(expression.mapping.items())),
                expression_key(expression.child))
    if isinstance(expression, NaturalJoin):
        return ("join", str(expression.on) if expression.on is not None else None,
                expression_key(expression.left), expression_key(expression.right))
    if isinstance(expression, MultiwayJoin):
        return ("multiway-join", str(expression.on),
                tuple(expression_key(child) for child in expression.inputs))
    if isinstance(expression, Aggregate):
        # Group-by order is semantically irrelevant, so sorting it lets
        # permuted spellings share one plan (the spec order is kept — it only
        # costs a cache miss, never a wrong reuse).
        return ("aggregate", tuple(sorted(expression.group_by)),
                tuple(spec.key() for spec in expression.specs),
                expression_key(expression.child))
    if isinstance(expression, Sort):
        return ("sort", tuple(key.key() for key in expression.keys),
                expression_key(expression.child))
    if isinstance(expression, Limit):
        return ("limit", expression.count, expression_key(expression.child))
    if isinstance(expression, SubqueryExtension):
        return ("subquery-extend", expression.attribute,
                expression_key(expression.child),
                expression_key(expression.subquery))
    # Product / Union / OuterUnion / Difference carry no payload beyond their
    # operator name and children; unknown nodes degrade to the same shape.
    return ((expression.operator,)
            + tuple(expression_key(child) for child in expression.children))


def referenced_tables(expression: Expression) -> frozenset:
    """The names of every base relation the expression tree reads."""
    names = set()
    pending = [expression]
    while pending:
        node = pending.pop()
        if isinstance(node, RelationRef):
            names.add(node.name)
        else:
            pending.extend(node.children)
    return frozenset(names)


def attribute_carriers(source, tables, name: str) -> frozenset:
    """The subset of ``tables`` whose declared scheme can carry attribute ``name``.

    Join selectivity on an equality attribute is a property of the value
    distributions in the tables that *carry* it, not of whatever else happens
    to sit on either side of one particular join — so observed edge
    selectivities are keyed by this set, letting an observation taken at
    ``(A ⋈ B ⋈ C) ⋈ D`` correct a candidate ``A ⋈ D`` over the same attribute.
    Tables the source cannot resolve (or without a declared scheme) are left
    out rather than guessed at.
    """
    carriers = set()
    for table_name in tables:
        table = None
        if hasattr(source, "table"):
            try:
                table = source.table(table_name)
            except Exception:
                continue
        elif isinstance(source, dict):
            table = source.get(table_name)
        if table is None:
            continue
        definition = getattr(table, "definition", None)
        scheme = (getattr(definition, "scheme", None)
                  or getattr(table, "scheme", None))
        attributes = getattr(scheme, "attributes", None)
        if attributes is None:
            continue
        try:
            names = {attribute.name for attribute in attrset(attributes)}
        except Exception:
            continue
        if name in names:
            carriers.add(table_name)
    return frozenset(carriers)


class CardinalityFeedback:
    """Bounded LRU of observed cardinalities per (fingerprint, stats version)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("feedback capacity must be positive")
        self.capacity = capacity
        #: (fingerprint, statistics_version) -> (actual_rows, tables)
        self._entries = OrderedDict()
        #: (attribute, carrier tables, statistics_version) -> (selectivity, tables)
        #: — observed join-edge selectivities, the signal that re-orders joins
        #: (a corrected *cardinality* alone cannot: candidate joins the search
        #: prices were never executed, but their edges were)
        self._edges = OrderedDict()
        #: table name -> number of entries/edges reading it; lets the per-row
        #: DML hook bail out in O(1) when a table has no feedback at all
        self._table_counts = {}
        self._version = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def version(self) -> int:
        """Bumped whenever the store's contents change in a way that could
        alter an estimate — new entry, changed value, or invalidation."""
        return self._version

    def __len__(self) -> int:
        return len(self._entries) + len(self._edges)

    def record(self, fingerprint, statistics_version, tables, actual_rows) -> bool:
        """Fold one observed cardinality in; returns True if anything changed.

        Re-recording an identical observation refreshes LRU recency but does
        not bump :attr:`version` — a stable workload keeps its plan cache hot.
        """
        key = (fingerprint, statistics_version)
        tables = frozenset(tables)
        existing = self._entries.get(key)
        if existing is not None and existing[0] == actual_rows:
            self._entries.move_to_end(key)
            return False
        if existing is not None:
            self._count_tables(existing[1], -1)
        self._entries[key] = (actual_rows, tables)
        self._entries.move_to_end(key)
        self._count_tables(tables, +1)
        while len(self._entries) > self.capacity:
            _evicted_key, (_rows, evicted_tables) = self._entries.popitem(last=False)
            self._count_tables(evicted_tables, -1)
            self.evictions += 1
        self._version += 1
        return True

    def _count_tables(self, tables, delta: int) -> None:
        counts = self._table_counts
        for name in tables:
            updated = counts.get(name, 0) + delta
            if updated > 0:
                counts[name] = updated
            else:
                counts.pop(name, None)

    def lookup(self, fingerprint, statistics_version):
        """The observed cardinality for the key, or None; refreshes recency."""
        key = (fingerprint, statistics_version)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    # -- join-edge selectivities ---------------------------------------------------------

    def record_edge(self, attribute: str, carriers, statistics_version,
                    selectivity: float) -> bool:
        """Fold one observed join-edge selectivity in; True if anything changed.

        ``carriers`` is the set of base tables carrying ``attribute`` on the
        executed join (see :func:`attribute_carriers`); the observed fraction
        ``rows_out / (rows_left × rows_right)`` then corrects *any* candidate
        join over the same attribute and carriers — including orders the search
        considers but has never executed.  A re-observation within
        :data:`EDGE_TOLERANCE` (relative) refreshes recency without bumping the
        version, so row-count jitter does not churn the plan cache.
        """
        key = (attribute, frozenset(carriers), statistics_version)
        existing = self._edges.get(key)
        if existing is not None:
            previous = existing[0]
            scale = max(abs(previous), 1e-12)
            if abs(previous - selectivity) <= EDGE_TOLERANCE * scale:
                self._edges.move_to_end(key)
                return False
            self._count_tables(existing[1], -1)
        tables = key[1]
        self._edges[key] = (selectivity, tables)
        self._edges.move_to_end(key)
        self._count_tables(tables, +1)
        while len(self._edges) > self.capacity:
            _evicted, (_sel, evicted_tables) = self._edges.popitem(last=False)
            self._count_tables(evicted_tables, -1)
            self.evictions += 1
        self._version += 1
        return True

    def lookup_edge(self, attribute: str, carriers,
                    statistics_version) -> Optional[float]:
        """The observed selectivity for the edge, or None; refreshes recency."""
        key = (attribute, frozenset(carriers), statistics_version)
        entry = self._edges.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._edges.move_to_end(key)
        self.hits += 1
        return entry[0]

    def invalidate_table(self, name: str) -> int:
        """Drop every entry/edge whose subexpression reads ``name``; returns count.

        O(1) when the table has no feedback — the common case on the per-row
        DML hook path during bulk loads.
        """
        if name not in self._table_counts:
            return 0
        dropped = 0
        for store in (self._entries, self._edges):
            stale = [key for key, (_value, tables) in store.items()
                     if name in tables]
            for key in stale:
                _value, tables = store.pop(key)
                self._count_tables(tables, -1)
            dropped += len(stale)
        if dropped:
            self.invalidations += dropped
            self._version += 1
        return dropped

    def rollback(self, version: int, statistics_version: int) -> int:
        """Undo the version churn of a rolled-back transaction; returns drops.

        Observations recorded under statistics versions newer than
        ``statistics_version`` were keyed against states the rollback erased —
        those version numbers will be handed out again for different states,
        so the observations are dropped rather than left to alias them.
        Entries invalidated *during* the transaction stay gone (their evidence
        cannot be reconstructed; losing feedback is only ever a planning
        pessimization).  The version counter is then restored so plans cached
        before the transaction are valid again.
        """
        dropped = 0
        for store in (self._entries, self._edges):
            doomed = [key for key in store if key[-1] > statistics_version]
            for key in doomed:
                _value, tables = store.pop(key)
                self._count_tables(tables, -1)
            dropped += len(doomed)
        self._version = version
        return dropped

    def clear(self) -> None:
        if self._entries or self._edges:
            self._version += 1
        self._entries.clear()
        self._edges.clear()
        self._table_counts.clear()
        self.hits = self.misses = 0
        self.evictions = self.invalidations = 0

    def as_dict(self) -> dict:
        return {
            "entries": len(self._entries),
            "edges": len(self._edges),
            "capacity": self.capacity,
            "version": self._version,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return "CardinalityFeedback(entries={}, edges={}, version={})".format(
            len(self._entries), len(self._edges), self._version)
