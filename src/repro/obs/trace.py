"""Structured tracing: spans and events over the query lifecycle.

A :class:`Tracer` lives on every :class:`~repro.engine.Database` and is
consulted by the layers a query travels through — parse, AD rewrites,
statistics lookup, join-order search, physical planning, execution — plus the
background machinery around them (plan-cache hits and misses, ANALYZE runs,
auto-ANALYZE triggers).  Spans *nest*: each carries its parent's id, a start
and end timestamp (``time.perf_counter`` relative to the tracer's epoch, so
durations are exact and records are deterministic to diff), and free-form
attributes.  Events are point-in-time records attached to the span that was
open when they fired.

**Tracing is off unless a sink is attached.**  The disabled fast path is one
attribute check returning a shared no-op context manager — no span objects, no
clock reads, no allocation — so leaving the tracer in place costs nothing on
the hot query path (the E15 benchmark gates the whole observability layer at
≤5% overhead).

::

    sink = db.tracer.attach(JsonTraceSink())
    db.query("SELECT name FROM employees WHERE jobtype = 'secretary'")
    db.tracer.detach()
    sink.dump("trace.json")         # offline inspection

The engine is single-threaded (see ROADMAP item 1); the tracer keeps one
current-span stack and is not thread-safe.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional


class TraceSink:
    """Destination of finished trace records (spans and events)."""

    def record(self, record: Dict[str, object]) -> None:
        raise NotImplementedError


class JsonTraceSink(TraceSink):
    """Collects records in memory and serializes them as a JSON array.

    Records arrive in *finish* order (a span is emitted when it closes, so
    children precede their parents); the ``id`` / ``parent`` fields rebuild
    the tree offline.
    """

    def __init__(self):
        self.records: List[Dict[str, object]] = []

    def record(self, record: Dict[str, object]) -> None:
        self.records.append(record)

    def spans(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r["type"] == "span"]

    def events(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r["type"] == "event"]

    def named(self, name: str) -> List[Dict[str, object]]:
        """Every record (span or event) with the given name."""
        return [r for r in self.records if r["name"] == name]

    def dumps(self) -> str:
        return json.dumps(self.records, indent=2, sort_keys=True, default=str)

    def dump(self, path: str) -> str:
        """Write the collected records to ``path`` as JSON; returns the path."""
        with open(path, "w") as handle:
            handle.write(self.dumps())
            handle.write("\n")
        return path

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return "JsonTraceSink({} records)".format(len(self.records))


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        return False

    def set(self, **attributes) -> "_NoopSpan":
        return self


#: the singleton no-op span (identity-checkable in tests)
NOOP_SPAN = _NoopSpan()


class Span:
    """One live span: a named, attributed interval in the query lifecycle.

    Use as a context manager — entering records the start time and pushes the
    span on the tracer's stack, exiting records the end time, pops it, and
    emits the finished record to the sink.  ``set(**attributes)`` adds or
    overwrites attributes at any point while the span is open (e.g. recording
    the chosen join order once the search finished).
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attributes",
                 "start", "end")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], attributes: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.start: Optional[float] = None
        self.end: Optional[float] = None

    def set(self, **attributes) -> "Span":
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = self._tracer._now()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.end = self._tracer._now()
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self._tracer._pop(self)
        return False

    def as_record(self) -> Dict[str, object]:
        return {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": (self.end - self.start
                         if self.start is not None and self.end is not None
                         else None),
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return "Span({!r}, id={}, parent={})".format(
            self.name, self.span_id, self.parent_id)


class Tracer:
    """Span/event factory with an attachable sink (disabled without one)."""

    def __init__(self):
        self._sink: Optional[TraceSink] = None
        self._stack: List[Span] = []
        self._next_id = 0
        self._epoch = time.perf_counter()

    @property
    def enabled(self) -> bool:
        """True while a sink is attached (the only state that records anything)."""
        return self._sink is not None

    def attach(self, sink: Optional[TraceSink] = None) -> TraceSink:
        """Attach (and return) a sink, enabling tracing; default a fresh
        :class:`JsonTraceSink`."""
        if sink is None:
            sink = JsonTraceSink()
        self._sink = sink
        return sink

    def detach(self) -> Optional[TraceSink]:
        """Detach the current sink (disabling tracing) and return it."""
        sink, self._sink = self._sink, None
        self._stack = []
        return sink

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def span(self, name: str, **attributes):
        """A context manager for one nested span (no-op while disabled)."""
        if self._sink is None:
            return NOOP_SPAN
        span_id, self._next_id = self._next_id, self._next_id + 1
        parent_id = self._stack[-1].span_id if self._stack else None
        return Span(self, name, span_id, parent_id, dict(attributes))

    def event(self, name: str, **attributes) -> None:
        """Record a point-in-time event under the currently open span."""
        if self._sink is None:
            return
        self._sink.record({
            "type": "event",
            "name": name,
            "span": self._stack[-1].span_id if self._stack else None,
            "time": self._now(),
            "attributes": dict(attributes),
        })

    # -- span bookkeeping (called by Span) ----------------------------------------------

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # unbalanced exit (an inner span leaked)
            self._stack.remove(span)
        if self._sink is not None:
            self._sink.record(span.as_record())

    def __repr__(self) -> str:
        return "Tracer(enabled={}, depth={})".format(self.enabled, len(self._stack))


def tracer_of(source) -> Optional[Tracer]:
    """The tracer carried by a relation source (a Database), or ``None``.

    The helper every engine layer uses: plain mapping sources have no tracer,
    and the returned ``None`` short-circuits all instrumentation.
    """
    tracer = getattr(source, "tracer", None)
    return tracer if isinstance(tracer, Tracer) else None
