"""Single-relation translations with NULL padding (the classical baseline).

Two of the four classical translation methods for a predicate-defined specialization
store everything in one homogeneous relation:

* :class:`NullPaddedTable` — one row per entity over *all* attributes (own + every
  subclass's), missing values padded with NULL, plus one artificial *variant tag*
  attribute telling which subclass the row belongs to;
* :class:`BooleanFlagTable` — the variant for overlapping subclasses: one boolean
  flag attribute per subclass instead of the single tag.

Both tables accept structurally anything (that is the paper's point: the burden of
setting and interpreting the artificial attributes, and of keeping the NULL pattern
consistent with them, is on the user).  They expose the same metrics the flexible
engine exposes — stored cells, NULL cells, inconsistent rows — so experiments E2 and
E8 can compare the approaches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.dependencies import ExplicitAttributeDependency
from repro.errors import ReproError
from repro.model.attributes import AttributeSet, attrset
from repro.model.tuples import FlexTuple

#: the NULL marker used by the flat tables
NULL = None


class NullPaddedTable:
    """A homogeneous table over all attributes with a single variant-tag attribute."""

    def __init__(self, attributes, dependency: ExplicitAttributeDependency,
                 tag_attribute: str = "variant_tag"):
        self.attributes = attrset(attributes)
        self.dependency = dependency
        if tag_attribute in self.attributes:
            raise ReproError("tag attribute {!r} clashes with an entity attribute".format(tag_attribute))
        self.tag_attribute = tag_attribute
        self.rows: List[Dict[str, object]] = []
        self._variant_names = [
            variant.name or "variant-{}".format(index + 1)
            for index, variant in enumerate(dependency.variants)
        ]

    # -- loading -------------------------------------------------------------------------------

    def tag_for(self, tup: FlexTuple) -> Optional[str]:
        """The tag value the *user* would have to supply for this tuple."""
        variant = self.dependency.variant_for(tup)
        if variant is None:
            return None
        index = self.dependency.variants.index(variant)
        return self._variant_names[index]

    def insert(self, item, tag: object = "auto") -> Dict[str, object]:
        """Store a tuple as a NULL-padded row.

        ``tag='auto'`` derives the correct tag from the dependency (a well-behaved
        user); any other value is stored as given — the table itself never rejects a
        row, so an inconsistent tag or NULL pattern goes unnoticed until queried.
        """
        tup = item if isinstance(item, FlexTuple) else FlexTuple(item)
        row: Dict[str, object] = {a.name: NULL for a in self.attributes}
        for name, value in tup.items():
            if name not in row:
                raise ReproError("attribute {!r} unknown to the flat table".format(name))
            row[name] = value
        row[self.tag_attribute] = self.tag_for(tup) if tag == "auto" else tag
        self.rows.append(row)
        return row

    def insert_many(self, items: Iterable, tag: object = "auto") -> List[Dict[str, object]]:
        return [self.insert(item, tag=tag) for item in items]

    # -- metrics -------------------------------------------------------------------------------------

    def null_cells(self) -> int:
        """Number of NULL cells currently stored (excluding the tag column)."""
        return sum(
            1 for row in self.rows for name, value in row.items()
            if name != self.tag_attribute and value is NULL
        )

    def stored_cells(self) -> int:
        """Total number of cells (every row stores every column, plus the tag)."""
        return len(self.rows) * (len(self.attributes) + 1)

    def inconsistent_rows(self) -> List[Dict[str, object]]:
        """Rows whose NULL pattern does not match the variant their tag claims.

        This is the consistency the user has to maintain manually; the flexible
        relation with its AD makes such rows unrepresentable.
        """
        inconsistent = []
        for row in self.rows:
            tup = FlexTuple({name: value for name, value in row.items()
                             if name != self.tag_attribute and value is not NULL})
            expected_tag = self.tag_for(tup)
            consistent = (
                expected_tag == row[self.tag_attribute]
                and self.dependency.check_tuple(tup)
            )
            if not consistent:
                inconsistent.append(row)
        return inconsistent

    def to_tuples(self) -> Set[FlexTuple]:
        """The heterogeneous view of the table (dropping NULLs and the tag)."""
        result = set()
        for row in self.rows:
            result.add(FlexTuple({name: value for name, value in row.items()
                                  if name != self.tag_attribute and value is not NULL}))
        return result

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return "NullPaddedTable(rows={}, nulls={})".format(len(self.rows), self.null_cells())


class BooleanFlagTable(NullPaddedTable):
    """The overlapping-subclasses variant: one boolean flag attribute per subclass."""

    def __init__(self, attributes, dependency: ExplicitAttributeDependency,
                 flag_prefix: str = "is_"):
        super().__init__(attributes, dependency, tag_attribute="_unused_tag")
        self.flag_prefix = flag_prefix
        self.flag_attributes = [
            flag_prefix + name for name in self._variant_names
        ]

    def insert(self, item, tag: object = "auto") -> Dict[str, object]:
        tup = item if isinstance(item, FlexTuple) else FlexTuple(item)
        row: Dict[str, object] = {a.name: NULL for a in self.attributes}
        for name, value in tup.items():
            if name not in row:
                raise ReproError("attribute {!r} unknown to the flat table".format(name))
            row[name] = value
        variant = self.dependency.variant_for(tup)
        for flag, name in zip(self.flag_attributes, self._variant_names):
            if tag == "auto":
                row[flag] = variant is not None and (variant.name or "") == name
            else:
                row[flag] = bool(tag)
        self.rows.append(row)
        return row

    def null_cells(self) -> int:
        return sum(
            1 for row in self.rows for name, value in row.items()
            if name in {a.name for a in self.attributes} and value is NULL
        )

    def stored_cells(self) -> int:
        return len(self.rows) * (len(self.attributes) + len(self.flag_attributes))

    def inconsistent_rows(self) -> List[Dict[str, object]]:
        inconsistent = []
        for row in self.rows:
            tup = FlexTuple({name: value for name, value in row.items()
                             if name in {a.name for a in self.attributes} and value is not NULL})
            variant = self.dependency.variant_for(tup)
            expected = {
                flag: variant is not None and (variant.name or "") == name
                for flag, name in zip(self.flag_attributes, self._variant_names)
            }
            flags_ok = all(row.get(flag) == value for flag, value in expected.items())
            if not (flags_ok and self.dependency.check_tuple(tup)):
                inconsistent.append(row)
        return inconsistent

    def to_tuples(self) -> Set[FlexTuple]:
        names = {a.name for a in self.attributes}
        result = set()
        for row in self.rows:
            result.add(FlexTuple({name: value for name, value in row.items()
                                  if name in names and value is not NULL}))
        return result

    def __repr__(self) -> str:
        return "BooleanFlagTable(rows={}, nulls={})".format(len(self.rows), self.null_cells())
