"""The traditional record-subtyping baseline (no attribute dependencies).

Used by experiment E7: given a family of subtypes, the traditional rule accepts any
record type all subtypes are record-subtypes of as a valid supertype — including the
types that drop the determining attributes and thereby destroy the connection between
determinant and variants.  The functions here work purely on
:class:`~repro.types.record_types.RecordType` values and the Cardelli rule, with no
knowledge of dependencies, so the comparison isolates exactly what ADs add.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.types.record_types import RecordType, is_record_subtype


class SubtypeLattice:
    """The subtype relation over a finite set of record types."""

    def __init__(self, types: Sequence[RecordType]):
        self.types = list(types)
        self._edges: Set[Tuple[str, str]] = set()
        for sub in self.types:
            for sup in self.types:
                if sub is not sup and is_record_subtype(sub, sup):
                    self._edges.add((sub.name, sup.name))

    def is_subtype(self, sub_name: str, super_name: str) -> bool:
        """``True`` when the named pair is in the (irreflexive) subtype relation."""
        return (sub_name, super_name) in self._edges

    def supertypes_of(self, name: str) -> List[str]:
        """Names of the lattice members the named type is a subtype of."""
        return sorted(sup for sub, sup in self._edges if sub == name)

    def subtypes_of(self, name: str) -> List[str]:
        """Names of the lattice members that are subtypes of the named type."""
        return sorted(sub for sub, sup in self._edges if sup == name)

    def edges(self) -> Set[Tuple[str, str]]:
        return set(self._edges)

    def __repr__(self) -> str:
        return "SubtypeLattice(types={}, edges={})".format(
            [t.name for t in self.types], len(self._edges)
        )


def accepted_supertypes(candidates: Iterable[RecordType],
                        subtypes: Iterable[RecordType]) -> List[RecordType]:
    """Candidates the traditional rule accepts as a common supertype of all subtypes."""
    subtypes = list(subtypes)
    return [
        candidate for candidate in candidates
        if all(is_record_subtype(subtype, candidate) for subtype in subtypes)
    ]


def common_supertypes(subtypes: Sequence[RecordType], name: str = "common") -> List[RecordType]:
    """Every projection of the shared fields that is a common supertype of all subtypes.

    This enumerates the candidate supertypes the traditional rule offers for a family
    of subtypes: any subset of the fields (with domains general enough for every
    subtype) qualifies.
    """
    if not subtypes:
        return []
    shared = set(subtypes[0].fields)
    for subtype in subtypes[1:]:
        shared &= set(subtype.fields)
    shared = sorted(shared)
    results: List[RecordType] = []
    for size in range(1, len(shared) + 1):
        for combo in combinations(shared, size):
            fields: Dict[str, object] = {}
            for field in combo:
                # Choose the most general domain among the subtypes for this field.
                domains = [subtype.domain_of(field) for subtype in subtypes]
                general = domains[0]
                for domain in domains[1:]:
                    from repro.types.record_types import domain_subsumes

                    if domain_subsumes(domain, general):
                        general = domain
                fields[field] = general
            candidate = RecordType("{}<{}>".format(name, ",".join(combo)), fields)
            if all(is_record_subtype(subtype, candidate) for subtype in subtypes):
                results.append(candidate)
    return results
