"""The multirelation model of Ahad & Basu (ESQL), with image attributes.

Section 5 of the paper: the multirelation model decomposes an entity into a *master*
relation and *depending* relations holding the variant information; the connection
is recorded by an **image attribute** — an attribute of the master relation whose
domain consists of relation *names*.  Restoration of the complete information can
then be automated by following the image attribute.

The paper's claim is that "image attributes can be regarded as a special case of an
attribute dependency using a single artificial attribute as determinant".  This
module implements the multirelation model faithfully (so experiment E9 can compare
behaviour) and provides :meth:`Multirelation.to_explicit_ad`, the translation into
the equivalent explicit AD.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.dependencies import ExplicitAttributeDependency, Variant
from repro.errors import ReproError
from repro.model.attributes import AttributeSet, attrset
from repro.model.tuples import FlexTuple


class ImageAttribute:
    """An attribute whose domain is a set of depending-relation names."""

    def __init__(self, name: str, relation_names: Sequence[str]):
        if not name:
            raise ReproError("an image attribute needs a name")
        self.name = name
        self.relation_names = tuple(relation_names)
        if not self.relation_names:
            raise ReproError("an image attribute needs at least one relation name")

    def __repr__(self) -> str:
        return "ImageAttribute({!r}, relations={})".format(self.name, list(self.relation_names))


class Multirelation:
    """A master relation plus depending relations connected by an image attribute.

    ``master_attributes`` are the attributes every entity carries (including the
    key); ``depending`` maps each depending-relation name to the attribute set it
    stores.  The image attribute's value in a master tuple names the depending
    relation holding that entity's variant attributes.
    """

    def __init__(self, master_attributes, key, image: ImageAttribute,
                 depending: Dict[str, Iterable]):
        self.master_attributes = attrset(master_attributes)
        self.key = attrset(key)
        if not self.key.issubset(self.master_attributes):
            raise ReproError("the key must be part of the master attributes")
        self.image = image
        self.depending_schemas: Dict[str, AttributeSet] = {
            name: attrset(attributes) for name, attributes in depending.items()
        }
        unknown = set(image.relation_names) - set(self.depending_schemas)
        if unknown:
            raise ReproError("image attribute names unknown depending relations: {}".format(unknown))
        self.master_rows: List[Dict[str, object]] = []
        self.depending_rows: Dict[str, List[Dict[str, object]]] = {
            name: [] for name in self.depending_schemas
        }

    # -- loading ---------------------------------------------------------------------------------

    def insert(self, item) -> None:
        """Split an entity tuple into a master row and (at most) one depending row.

        The depending relation is chosen as the one whose attribute set (beyond the
        key) matches the variant attributes the tuple carries; entities without
        variant attributes get a NULL image value.
        """
        tup = item if isinstance(item, FlexTuple) else FlexTuple(item)
        if not tup.is_defined_on(self.key):
            raise ReproError("tuple {!r} lacks the key {}".format(tup, self.key))
        variant_attrs = tup.attributes - self.master_attributes
        master_row = {a.name: tup[a] for a in (tup.attributes & self.master_attributes)}
        target: Optional[str] = None
        if variant_attrs:
            for name, schema in self.depending_schemas.items():
                if variant_attrs == (schema - self.key):
                    target = name
                    break
            if target is None:
                raise ReproError(
                    "no depending relation stores the attribute combination {}".format(variant_attrs)
                )
            depending_row = {a.name: tup[a] for a in (self.key | variant_attrs)}
            self.depending_rows[target].append(depending_row)
        master_row[self.image.name] = target
        self.master_rows.append(master_row)

    def insert_many(self, items: Iterable) -> None:
        for item in items:
            self.insert(item)

    # -- restoration ------------------------------------------------------------------------------

    def restore(self) -> Set[FlexTuple]:
        """Follow the image attribute to rebuild the complete heterogeneous instance."""
        indexes: Dict[str, Dict[Tuple, Dict[str, object]]] = {}
        for name, rows in self.depending_rows.items():
            index: Dict[Tuple, Dict[str, object]] = {}
            for row in rows:
                index[tuple(row[a.name] for a in self.key)] = row
            indexes[name] = index
        result: Set[FlexTuple] = set()
        for master_row in self.master_rows:
            values = {name: value for name, value in master_row.items() if name != self.image.name}
            target = master_row[self.image.name]
            if target is not None:
                key_value = tuple(master_row[a.name] for a in self.key)
                depending_row = indexes[target].get(key_value)
                if depending_row is not None:
                    values.update(depending_row)
            result.add(FlexTuple(values))
        return result

    # -- the paper's claim -------------------------------------------------------------------------------

    def to_explicit_ad(self) -> ExplicitAttributeDependency:
        """The explicit AD equivalent to this multirelation's image attribute.

        The artificial determinant is the image attribute itself; each depending
        relation becomes one variant whose attribute set is the relation's schema
        minus the key.
        """
        variants = []
        all_variant_attrs = AttributeSet()
        for name in self.image.relation_names:
            local = self.depending_schemas[name] - self.key
            all_variant_attrs = all_variant_attrs | local
            variants.append(Variant([{self.image.name: name}], local, name=name))
        return ExplicitAttributeDependency(attrset(self.image.name), all_variant_attrs, variants)

    # -- metrics -------------------------------------------------------------------------------------------

    def stored_cells(self) -> int:
        """Cells stored across the master and depending relations (incl. image values)."""
        cells = sum(len(row) for row in self.master_rows)
        for rows in self.depending_rows.values():
            cells += sum(len(row) for row in rows)
        return cells

    def __len__(self) -> int:
        return len(self.master_rows)

    def __repr__(self) -> str:
        depending = {name: len(rows) for name, rows in self.depending_rows.items()}
        return "Multirelation(master={}, depending={})".format(len(self.master_rows), depending)
