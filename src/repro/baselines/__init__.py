"""Baselines the paper compares attribute dependencies against.

* :mod:`repro.baselines.null_relations` — the classical single-relation translations
  of a specialization: one homogeneous table over all attributes, missing values
  padded with NULLs, plus an artificial variant-tag attribute (or one boolean flag
  per subclass) that the user must set and interpret (Section 3.1.1).
* :mod:`repro.baselines.multirelation` — the "multirelation" model of Ahad & Basu
  with image attributes, which Section 5 shows to be a special case of attribute
  dependencies.
* :mod:`repro.baselines.record_subtyping` — the traditional record-subtyping rule
  without the causal connection ADs add (the comparison of Section 3.2).
"""

from repro.baselines.null_relations import BooleanFlagTable, NullPaddedTable
from repro.baselines.multirelation import ImageAttribute, Multirelation
from repro.baselines.record_subtyping import (
    SubtypeLattice,
    accepted_supertypes,
    common_supertypes,
)

__all__ = [
    "NullPaddedTable",
    "BooleanFlagTable",
    "Multirelation",
    "ImageAttribute",
    "SubtypeLattice",
    "accepted_supertypes",
    "common_supertypes",
]
