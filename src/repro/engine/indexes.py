"""Hash indexes over heterogeneous tuples.

An index over an attribute set ``X`` maps the ``X``-projection of a tuple to the set
of stored tuples with that projection.  Tuples that are not defined on all of ``X``
are simply not indexed — which matches the semantics of the dependency definitions,
where only tuples defined on the determinant participate in the constraint.

The engine keeps one index per declared key and per dependency determinant so that
inserting a tuple only has to compare it against the tuples agreeing on the
determinant instead of the whole relation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.model.attributes import AttributeSet, attrset
from repro.model.tuples import FlexTuple


class HashIndex:
    """A hash index on a fixed attribute set."""

    def __init__(self, attributes):
        self.attributes = attrset(attributes)
        self._buckets: Dict[Tuple, Set[FlexTuple]] = defaultdict(set)
        self._indexed = 0

    def key_of(self, tup: FlexTuple) -> Optional[Tuple]:
        """The index key of a tuple, or ``None`` when the tuple lacks an indexed attribute."""
        if not tup.is_defined_on(self.attributes):
            return None
        return tuple(tup[a] for a in self.attributes)

    def add(self, tup: FlexTuple) -> None:
        """Index a tuple (no-op for tuples not defined on the indexed attributes)."""
        key = self.key_of(tup)
        if key is not None:
            bucket = self._buckets[key]
            if tup not in bucket:
                bucket.add(tup)
                self._indexed += 1

    def remove(self, tup: FlexTuple) -> None:
        """Remove a tuple from the index (no-op when it was never indexed)."""
        key = self.key_of(tup)
        if key is None:
            return
        bucket = self._buckets.get(key)
        if bucket and tup in bucket:
            bucket.remove(tup)
            self._indexed -= 1
            if not bucket:
                del self._buckets[key]

    def lookup(self, probe) -> Set[FlexTuple]:
        """Tuples whose indexed projection equals the probe's.

        ``probe`` may be a tuple of values (in sorted attribute order), a mapping, or
        a :class:`FlexTuple`.  An empty set is returned when the probe does not bind
        every indexed attribute.
        """
        if isinstance(probe, tuple):
            key = probe
        else:
            tup = probe if isinstance(probe, FlexTuple) else FlexTuple(probe)
            key = self.key_of(tup)
            if key is None:
                return set()
        return set(self._buckets.get(key, ()))

    def groups(self) -> Iterable[Tuple[Tuple, Set[FlexTuple]]]:
        """Iterate over ``(key, tuples)`` buckets."""
        return self._buckets.items()

    def average_bucket_size(self) -> float:
        """Average tuples per index key — the expected partners of one probe."""
        if not self._buckets:
            return 0.0
        return self._indexed / float(len(self._buckets))

    def __len__(self) -> int:
        return self._indexed

    def clear(self) -> None:
        self._buckets.clear()
        self._indexed = 0

    def __repr__(self) -> str:
        return "HashIndex(on={}, buckets={}, tuples={})".format(
            self.attributes, len(self._buckets), self._indexed
        )
