"""Tables and the database facade.

:class:`Table` stores the tuples of one flexible relation and enforces its
definition's constraints on every insert, update and delete.  :class:`Database`
bundles a :class:`~repro.engine.catalog.Catalog` with its tables and is the object
the algebra evaluator and the optimizer talk to: it resolves relation names, exposes
declared dependencies, and runs (optionally optimized) queries.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.algebra.evaluator import EvaluationResult, Evaluator
from repro.algebra.expressions import Expression
from repro.core.dependencies import Dependency
from repro.engine.catalog import Catalog, TableDefinition
from repro.engine.constraints import ConstraintChecker
from repro.engine.indexes import HashIndex
from repro.errors import (
    AdmissionRejected,
    CatalogError,
    ConstraintViolation,
    MemoryBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
)
from repro.exec.executor import PhysicalExecutor
from repro.exec.planner import PhysicalPlan
from repro.model.attributes import AttributeSet, attrset
from repro.model.domains import Domain
from repro.model.relation import FlexibleRelation
from repro.model.scheme import FlexibleScheme
from repro.model.tuples import FlexTuple
from repro.obs.explain import (
    ExplainAnalyzeReport,
    node_q_errors,
    pair_nodes_with_stats,
    plan_nodes,
    render_explain_analyze,
)
from repro.obs.export import json_snapshot, prometheus_text
from repro.obs.feedback import (
    QERROR_THRESHOLD,
    CardinalityFeedback,
    attribute_carriers,
    expression_key,
)
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    MEMORY_BUCKETS,
    MetricsRegistry,
    SlowQueryLog,
    q_error,
)
from repro.obs.profiler import PlanWatchdog, WorkloadProfile
from repro.obs.trace import Tracer
from repro.optimizer.joinorder import SEARCH_MODES
from repro.optimizer.planner import Planner
from repro.optimizer.rewrite_rules import RewriteReport
from repro.stats.catalog import StatisticsCatalog


class Table:
    """The stored instance of one table definition, with constraint enforcement.

    Every successful mutation bumps :attr:`mutation_count` and notifies the
    optional ``on_mutation`` callback — the hook the database uses to invalidate
    collected statistics the moment they could mislead the planner.

    The optional ``journal`` callback — ``journal(kind, old, new)`` — is the
    write-ahead hook of durable databases: it is called after every constraint
    check has passed but *before* the mutation is applied, so a mutation is on
    the log before it is visible in memory (see :mod:`repro.storage`).
    :meth:`restore` never journals — it implements rollback, whose uncommitted
    records the log discards by itself.
    """

    def __init__(self, definition: TableDefinition, enforce: bool = True,
                 on_mutation=None, journal=None):
        self.definition = definition
        self.checker = ConstraintChecker(
            definition,
            check_scheme=enforce,
            check_domains=enforce,
            check_dependencies=enforce,
        )
        self._tuples: Set[FlexTuple] = set()
        #: bumped on every successful insert / update / delete / restore
        self.mutation_count = 0
        self._on_mutation = on_mutation
        self._journal = journal

    def _mutated(self, kind: str) -> None:
        self.mutation_count += 1
        if self._on_mutation is not None:
            self._on_mutation(kind)

    # -- read access -----------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def tuples(self) -> Set[FlexTuple]:
        """A copy of the stored tuples."""
        return set(self._tuples)

    def __iter__(self):
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, item) -> bool:
        return _as_tuple(item) in self._tuples

    def index_for(self, attributes) -> Optional["HashIndex"]:
        """A maintained hash index whose attributes are covered by ``attributes``.

        Consulted by the physical :class:`~repro.exec.operators.Scan` to answer
        pushed-down equality predicates from an index bucket instead of a full
        scan.  The key index is preferred; ``None`` when no maintained index is
        covered by the given attribute names.
        """
        wanted = attrset(attributes)
        for index in self.checker.indexes():
            if index.attributes.issubset(wanted):
                return index
        return None

    def as_relation(self) -> FlexibleRelation:
        """A :class:`FlexibleRelation` snapshot of the table."""
        relation = FlexibleRelation(
            self.definition.scheme,
            domains=self.definition.domains,
            name=self.definition.name,
            validate=False,
        )
        for tup in self._tuples:
            relation.insert(tup)
        return relation

    # -- DML ---------------------------------------------------------------------------------

    def insert(self, item) -> FlexTuple:
        """Insert a tuple after running every constraint check."""
        tup = _as_tuple(item)
        if tup in self._tuples:
            return tup
        self.checker.check_insert(tup)
        if self._journal is not None:
            self._journal("insert", None, tup)
        self._tuples.add(tup)
        self.checker.register_tuple(tup)
        self._mutated("insert")
        return tup

    def insert_many(self, items: Iterable) -> List[FlexTuple]:
        """Insert several tuples, stopping at the first violation."""
        return [self.insert(item) for item in items]

    def delete(self, item) -> bool:
        """Delete a tuple; returns whether it was stored."""
        tup = _as_tuple(item)
        if tup not in self._tuples:
            return False
        if self._journal is not None:
            self._journal("delete", tup, None)
        self._tuples.remove(tup)
        self.checker.unregister_tuple(tup)
        self._mutated("delete")
        return True

    def delete_where(self, predicate) -> int:
        """Delete every tuple satisfying ``predicate`` (a callable); returns the count."""
        victims = [tup for tup in self._tuples if predicate(tup)]
        for tup in victims:
            self.delete(tup)
        return len(victims)

    # -- snapshots (used by Database.transaction) -------------------------------------------------

    def snapshot(self) -> Set[FlexTuple]:
        """An opaque snapshot of the table's current contents."""
        return set(self._tuples)

    def restore(self, snapshot: Set[FlexTuple]) -> None:
        """Reset the table to a snapshot taken earlier (indexes are rebuilt)."""
        self._tuples = set(snapshot)
        self.checker = ConstraintChecker(
            self.definition,
            check_scheme=self.checker.check_scheme,
            check_domains=self.checker.check_domains,
            check_dependencies=self.checker.check_dependencies,
        )
        for tup in self._tuples:
            self.checker.register_tuple(tup)
        self._mutated("restore")

    def update(self, old, **changes) -> FlexTuple:
        """Replace attribute values of a stored tuple.

        The replacement is fully re-checked: as the paper notes, changing the value
        of a determining attribute (e.g. the jobtype) causes a *type* change, so the
        new tuple may require a different attribute combination and is rejected when
        it does not conform.
        """
        old_tuple = _as_tuple(old)
        if old_tuple not in self._tuples:
            raise ConstraintViolation("tuple {!r} is not stored in table {!r}".format(old_tuple, self.name))
        merged = old_tuple.as_dict()
        for name, value in changes.items():
            if value is REMOVE:
                merged.pop(name, None)
            else:
                merged[name] = value
        new_tuple = FlexTuple(merged)
        self.checker.check_update(old_tuple, new_tuple)
        if self._journal is not None:
            self._journal("update", old_tuple, new_tuple)
        self._tuples.remove(old_tuple)
        self.checker.unregister_tuple(old_tuple)
        self._tuples.add(new_tuple)
        self.checker.register_tuple(new_tuple)
        self._mutated("update")
        return new_tuple

    def __repr__(self) -> str:
        return "Table({!r}, {} tuples)".format(self.name, len(self._tuples))


class _Remove:
    """Sentinel marking an attribute for removal in :meth:`Table.update`."""

    def __repr__(self) -> str:
        return "REMOVE"


#: pass ``attribute=REMOVE`` to :meth:`Table.update` to drop an attribute from a tuple
REMOVE = _Remove()


class Database:
    """A catalog plus its stored tables; the facade used by examples and benchmarks.

    ``auto_analyze=True`` enables the automatic re-ANALYZE policy: once a table
    has been analyzed, further DML re-collects its statistics as soon as the
    mutations since the last ANALYZE exceed ``auto_analyze_fraction`` (~10%) of
    the rows it had back then.  Off by default — ANALYZE stays an explicit call
    unless opted in.

    ``join_order_search`` selects the physical planner's n-way join-order
    strategy (``"dp"`` — the default Selinger-style search — or ``"greedy"``,
    ``"smallest"``, ``"none"``; see :mod:`repro.optimizer.joinorder`).

    Every database carries the observability layer of :mod:`repro.obs`: a
    :class:`~repro.obs.trace.Tracer` (inert until a sink is attached), a
    :class:`~repro.obs.metrics.MetricsRegistry` behind :meth:`metrics`, a
    :class:`~repro.obs.metrics.SlowQueryLog` whose threshold (in seconds) is
    set by ``slow_query_threshold``, a
    :class:`~repro.obs.feedback.CardinalityFeedback` store feeding observed
    cardinalities back into the cost model, and a
    :class:`~repro.obs.profiler.PlanWatchdog` flagging plan changes and
    latency regressions (capture a window with :meth:`profile`; export via
    :meth:`prometheus_metrics` / :meth:`metrics_snapshot`).

    Resource governance (see :mod:`repro.governor`): ``query_timeout`` is the
    database-wide default deadline in seconds for physical queries,
    ``memory_budget`` the default per-query byte budget on held operator
    state; ``spill=True`` lets the spill-capable operators (sort, hash
    aggregate, static-key hash join) stay under the budget via CRC-framed
    temp segments in ``spill_directory`` (system temp by default), while
    ``spill=False`` turns a blown budget into an immediate
    ``MemoryBudgetExceeded``.  Every per-query override on :meth:`execute`
    wins over these defaults.  ``admission`` plugs in an
    :class:`~repro.governor.admission.AdmissionController` that gates
    physical queries before planning.
    """

    def __init__(self, enforce_constraints: bool = True,
                 auto_analyze: bool = False,
                 auto_analyze_fraction: float = 0.1,
                 join_order_search: Optional[str] = None,
                 slow_query_threshold: float = 1.0,
                 durable_path: Optional[str] = None,
                 group_commit_window: float = 0.0,
                 group_commit_max: int = 64,
                 checkpoint_every_bytes: Optional[int] = None,
                 wal_fsync: bool = True,
                 wal_file_factory=None,
                 query_timeout: Optional[float] = None,
                 memory_budget: Optional[int] = None,
                 spill: bool = True,
                 spill_directory: Optional[str] = None,
                 admission=None):
        self.catalog = Catalog()
        self.enforce_constraints = enforce_constraints
        self._tables: Dict[str, Table] = {}
        self._physical_executor: Optional[PhysicalExecutor] = None
        if join_order_search is not None and join_order_search not in SEARCH_MODES:
            # Fail at construction, not at the first query hours later.
            raise CatalogError(
                "unknown join_order_search mode {!r}; use one of {}".format(
                    join_order_search, "/".join(SEARCH_MODES)))
        self._join_order_search = join_order_search
        #: collected ANALYZE results; the cost model consults this catalog
        self.statistics = StatisticsCatalog(
            self, auto_analyze=auto_analyze,
            auto_analyze_fraction=auto_analyze_fraction,
        )
        #: lifecycle spans/events — attach a sink to start recording
        self.tracer = Tracer()
        #: cross-query counters/gauges/histograms (snapshot via :meth:`metrics`)
        self.metrics_registry = MetricsRegistry()
        #: queries slower than the threshold, with their worst Q-error nodes
        self.slow_query_log = SlowQueryLog(threshold=slow_query_threshold)
        #: observed per-subexpression cardinalities — the cost model consults
        #: this before histogram/NDV math, so repeated queries plan with
        #: observed truth; DML- and ANALYZE-invalidated, never persisted
        self.cardinality_feedback = CardinalityFeedback()
        #: plan-change and latency-regression detection per query fingerprint
        self.plan_watchdog = PlanWatchdog()
        #: the active :meth:`profile` window, if any
        self._active_profile: Optional[WorkloadProfile] = None
        #: True while recovery replays the log (mutations must not re-log)
        self._journal_suppressed = False
        #: database-wide governance defaults (per-query arguments override)
        self.query_timeout = query_timeout
        self.memory_budget = memory_budget
        self.spill = bool(spill)
        self.spill_directory = spill_directory
        #: the optional admission controller gating physical execution
        self.admission = admission
        if admission is not None and admission.registry is None:
            admission.registry = self.metrics_registry
        self._closed = False
        #: the durability manager of ``durable_path=...`` databases, else None
        self.durability = None
        if durable_path is not None:
            # Imported lazily: repro.storage builds on the serialization layer,
            # which imports this module.
            from repro.storage.durable import DurabilityManager

            self.durability = DurabilityManager(
                self, durable_path,
                group_commit_window=group_commit_window,
                group_commit_max=group_commit_max,
                checkpoint_every_bytes=checkpoint_every_bytes,
                fsync=wal_fsync,
                file_factory=wal_file_factory,
            )
            self.durability.open()

    @property
    def catalog_version(self) -> int:
        """The catalog's schema version (plan-cache invalidation hook)."""
        return self.catalog.version

    @property
    def statistics_version(self) -> int:
        """The statistics catalog's version (second plan-cache invalidation hook)."""
        return self.statistics.version

    @property
    def feedback_version(self) -> int:
        """The cardinality-feedback store's version (third plan-cache
        invalidation hook: new observations must trigger a re-plan)."""
        return self.cardinality_feedback.version

    @property
    def physical_executor(self) -> PhysicalExecutor:
        """The database's physical executor (created lazily, plan cache persists)."""
        if self._physical_executor is None:
            self._physical_executor = PhysicalExecutor(
                self, join_order_search=self._join_order_search)
        return self._physical_executor

    # -- schema management ------------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        scheme: FlexibleScheme,
        domains: Optional[Dict[str, Domain]] = None,
        key=None,
        dependencies: Optional[Sequence[Dependency]] = None,
        indexes: Optional[Sequence] = None,
    ) -> Table:
        """Register a definition and create its (empty) table.

        ``indexes`` declares secondary hash indexes (each an attribute set) the
        engine maintains alongside the key index; index-aware scans and
        index-lookup joins use them.
        """
        definition = TableDefinition(
            name, scheme, domains=domains, key=key, dependencies=dependencies,
            indexes=indexes,
        )
        self.catalog.register(definition)
        if self.durability is not None and not self._journal_suppressed:
            try:
                self.durability.log_create_table(definition)
            except BaseException:
                # The registration must not outlive a failed journal write, or
                # memory and log would disagree about the schema.
                self.catalog.unregister(name)
                raise
        table = Table(
            definition,
            enforce=self.enforce_constraints,
            on_mutation=lambda kind, _name=name: self._note_mutation(_name, kind),
            journal=lambda kind, old, new, _name=name: self._journal_mutation(
                _name, kind, old, new),
        )
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table and its definition (and any collected statistics)."""
        self.table(name)  # raises CatalogError before anything is journaled
        if self.durability is not None and not self._journal_suppressed:
            self.durability.log_drop_table(name)
        self.catalog.unregister(name)
        del self._tables[name]
        self.statistics.invalidate(name)

    def table(self, name: str) -> Table:
        """The stored table registered under ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError("unknown table {!r}".format(name)) from None

    # -- interfaces consumed by the algebra / optimizer ----------------------------------------------

    def relation(self, name: str) -> Table:
        """Alias of :meth:`table` (the evaluator's resolution hook)."""
        return self.table(name)

    def dependencies(self, name: str) -> List[Dependency]:
        """Declared dependencies of a table (the optimizer's resolution hook)."""
        return self.catalog.dependencies(name)

    def tables(self) -> List[str]:
        return self.catalog.names()

    # -- statistics -------------------------------------------------------------------------------------

    def analyze(self, name: Optional[str] = None,
                sample_size: Optional[int] = None):
        """Collect planner statistics (ANALYZE) for one table or every table.

        ``sample_size`` caps how many tuples ANALYZE reads per table: tables
        above that row threshold are reservoir-sampled and their cardinality,
        NDV (GEE-style estimator) and frequency tables are scaled up — cheap at
        millions of rows, exact enough for planning.  ``None`` reads everything.

        Returns the collected :class:`~repro.stats.TableStatistics` when a name
        is given, otherwise the database's :class:`~repro.stats.StatisticsCatalog`.
        Fresh statistics feed the cost model until the next mutation of the
        analyzed table.
        """
        if self.durability is not None and not self._journal_suppressed:
            self.durability.log_analyze(name, sample_size)
        self.statistics.analyze(name, sample_size=sample_size)
        if name is not None:
            return self.statistics.get(name)
        return self.statistics

    def stats(self, name: Optional[str] = None):
        """The last collected statistics (fresh or stale — check ``.stale``).

        With a name: that table's :class:`~repro.stats.TableStatistics` or
        ``None`` when it was never analyzed.  Without: a dict over every
        analyzed table.
        """
        if name is not None:
            return self.statistics.peek(name)
        return {table: self.statistics.peek(table) for table in self.statistics.names()}

    # -- DML convenience --------------------------------------------------------------------------------

    def insert(self, name: str, item) -> FlexTuple:
        return self.table(name).insert(item)

    def insert_many(self, name: str, items: Iterable) -> List[FlexTuple]:
        return self.table(name).insert_many(items)

    # -- durability hooks --------------------------------------------------------------------------------

    def _journal_mutation(self, name: str, kind: str, old, new) -> None:
        """The tables' write-ahead hook: journal a checked, unapplied mutation."""
        if self.durability is not None and not self._journal_suppressed:
            self.durability.log_mutation(name, kind, old, new)

    def _note_mutation(self, name: str, kind: str) -> None:
        """The tables' post-apply hook: invalidate statistics, maybe checkpoint.

        The auto-checkpoint trigger must live here (after the mutation is
        applied), never in the journal hook: a snapshot taken between journal
        and apply would miss the in-flight mutation whose record sits in the
        old epoch's log — and that log is deleted after the switch.
        """
        self.statistics.note_mutation(name, kind)
        if self.durability is not None and not self._journal_suppressed:
            self.durability.maybe_checkpoint()

    @contextmanager
    def _suspend_journal(self):
        """Recovery replays through the normal DML paths; this keeps the
        replay from journaling (and checkpointing) itself."""
        previous = self._journal_suppressed
        self._journal_suppressed = True
        try:
            yield
        finally:
            self._journal_suppressed = previous

    def checkpoint(self) -> str:
        """Snapshot the database atomically and truncate the write-ahead log.

        Only meaningful on durable databases; returns the snapshot path.
        Recovery after the checkpoint loads the snapshot and replays only the
        (fresh, small) log written since — bounding recovery cost.
        """
        if self.durability is None:
            raise CatalogError(
                "checkpoint() requires a durable database "
                "(open it with Database(durable_path=...))")
        return self.durability.checkpoint()

    def close(self) -> None:
        """Release the durability layer; safe to call any number of times.

        An open transaction is aborted (its abort record is appended best
        effort; replay discards uncommitted work regardless), the write-ahead
        log is flushed and closed, and a second ``close()`` is a no-op.
        In-memory databases close trivially.  The in-memory tables stay
        readable — only durability is relinquished.
        """
        if self._closed:
            return
        self._closed = True
        if self.durability is not None:
            self.durability.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    # -- queries ------------------------------------------------------------------------------------------

    @staticmethod
    def _vectorize_flag(mode: Optional[str]) -> Optional[bool]:
        """Map an execution-mode name to the executor's ``vectorize`` override."""
        if mode is None:
            return None
        if mode == "batch":
            return True
        if mode == "row":
            return False
        raise CatalogError("unknown execution mode {!r}; use 'batch' or 'row'".format(mode))

    def execute(self, expression: Expression, optimize: bool = False,
                executor: str = "physical", mode: Optional[str] = None,
                batch_size: Optional[int] = None,
                timeout: Optional[float] = None,
                cancel_token=None,
                memory_budget: Optional[int] = None,
                spill: Optional[bool] = None,
                query_class: str = "default") -> EvaluationResult:
        """Evaluate an algebra expression against the stored tables.

        ``executor`` selects the execution engine: ``"physical"`` (default) runs
        the expression through the physical plan layer of :mod:`repro.exec` —
        index-aware scans, hash joins, cached plans; ``"naive"`` runs the
        reference set evaluator of :mod:`repro.algebra`.  ``mode`` picks the
        physical execution mode: ``"batch"`` (vectorized operators, the
        default), ``"row"`` (tuple-at-a-time), or ``None`` for the executor's
        default.  ``batch_size`` pins the tuples-per-batch for this execution;
        ``None`` lets the planner size batches adaptively from the statistics.
        All paths produce identical result sets (enforced by the differential
        test suite).

        Governance (physical executor only): ``timeout`` sets this query's
        deadline in seconds (``QueryTimeout`` past it); ``cancel_token`` a
        :class:`~repro.governor.cancel.CancelToken` another thread may fire
        (``QueryCancelled``); ``memory_budget`` caps held operator state in
        bytes, with ``spill`` deciding whether spill-capable operators go to
        disk or the query fails fast (``None`` = the database default);
        ``query_class`` names the admission/timeout class when an
        :class:`~repro.governor.admission.AdmissionController` is attached.
        """
        result, _report = self.execute_with_report(
            expression, optimize=optimize, executor=executor, mode=mode,
            batch_size=batch_size, timeout=timeout, cancel_token=cancel_token,
            memory_budget=memory_budget, spill=spill, query_class=query_class)
        return result

    def execute_with_report(self, expression: Expression, optimize: bool = True,
                            executor: str = "physical",
                            mode: Optional[str] = None,
                            batch_size: Optional[int] = None,
                            timeout: Optional[float] = None,
                            cancel_token=None,
                            memory_budget: Optional[int] = None,
                            spill: Optional[bool] = None,
                            query_class: str = "default") -> Tuple[EvaluationResult, RewriteReport]:
        """Evaluate an expression and also return the optimizer's rewrite report."""
        if executor not in ("physical", "naive"):
            raise CatalogError("unknown executor {!r}; use 'physical' or 'naive'".format(executor))
        vectorize = self._vectorize_flag(mode)
        report = RewriteReport()
        with self.tracer.span("query.execute", executor=executor):
            if optimize:
                with self.tracer.span("rewrite"):
                    planner = Planner(catalog=self)
                    expression, report = planner.optimize(expression)
            if executor == "physical":
                _plan, result = self._run_physical(
                    expression, vectorize, batch_size, timeout=timeout,
                    cancel_token=cancel_token, memory_budget=memory_budget,
                    spill=spill, query_class=query_class)
                return result, report
            if (timeout is not None or cancel_token is not None
                    or memory_budget is not None):
                raise CatalogError(
                    "timeout/cancel_token/memory_budget require the physical "
                    "executor; the naive evaluator is ungoverned")
            evaluator = Evaluator(self)
            return evaluator.evaluate(expression), report

    def _governor_for(self, timeout: Optional[float], cancel_token,
                      memory_budget: Optional[int], spill: Optional[bool],
                      query_class: str):
        """The governor for one execution, or ``None`` when nothing bounds it
        (the common case — ungoverned queries pay zero per-batch overhead).

        Deadline precedence: the per-query ``timeout`` wins, then the
        admission controller's class timeout, then the database default.
        """
        effective_timeout = timeout
        if effective_timeout is None and self.admission is not None:
            effective_timeout = self.admission.timeout_for(query_class)
        if effective_timeout is None:
            effective_timeout = self.query_timeout
        effective_budget = (memory_budget if memory_budget is not None
                            else self.memory_budget)
        if (effective_timeout is None and cancel_token is None
                and effective_budget is None):
            return None
        from repro.governor import QueryGovernor

        return QueryGovernor(
            cancel_token=cancel_token,
            timeout=effective_timeout,
            memory_budget=effective_budget,
            spill=self.spill if spill is None else bool(spill),
            spill_directory=self.spill_directory,
            registry=self.metrics_registry)

    def _run_physical(self, expression: Expression, vectorize: Optional[bool],
                      batch_size: Optional[int],
                      timeout: Optional[float] = None,
                      cancel_token=None,
                      memory_budget: Optional[int] = None,
                      spill: Optional[bool] = None,
                      query_class: str = "default"):
        """Plan + execute through the physical layer, feeding the metrics.

        The shared tail of :meth:`execute_with_report` and
        :meth:`explain_analyze`: both must observe identical counters, spans
        and slow-query accounting, differing only in how they render.

        Governed runs additionally admit through the controller (sheds raise
        ``AdmissionRejected`` before any planning), thread a
        :class:`~repro.governor.governor.QueryGovernor` into the operators,
        and terminate with the taxonomy of :mod:`repro.errors` — every
        termination lands in :meth:`_observe_termination` exactly once and
        never in the success-path counters.
        """
        controller = self.admission
        ticket = None
        started = perf_counter()
        if controller is not None:
            try:
                ticket = controller.admit(query_class)
            except AdmissionRejected:
                self._observe_termination("shed", expression, None,
                                          perf_counter() - started)
                raise
        governor = self._governor_for(timeout, cancel_token, memory_budget,
                                      spill, query_class)
        executor = self.physical_executor
        outcome = "success"
        plan = None
        try:
            with self.tracer.span("plan"):
                plan = executor.plan(expression, vectorize=vectorize,
                                     batch_size=batch_size)
            with self.tracer.span("execute", mode=plan.mode) as span:
                result = plan.execute(self, use_indexes=executor.use_indexes,
                                      governor=governor)
                span.set(rows=len(result.tuples))
        except QueryTimeout:
            outcome = "timeout"
            self._observe_termination(outcome, expression, plan,
                                      perf_counter() - started)
            raise
        except QueryCancelled:
            outcome = "cancelled"
            self._observe_termination(outcome, expression, plan,
                                      perf_counter() - started)
            raise
        except MemoryBudgetExceeded:
            outcome = "memory_exceeded"
            self._observe_termination(outcome, expression, plan,
                                      perf_counter() - started)
            raise
        except Exception:
            outcome = "error"
            raise
        finally:
            if governor is not None:
                governor.finish()
            if ticket is not None:
                # A client-initiated cancel is not the engine's failure; a
                # timeout, blown budget or error feeds the circuit breaker.
                controller.complete(
                    ticket, success=(outcome in ("success", "cancelled")))
        self._observe_query(expression, plan, result, perf_counter() - started)
        return plan, result

    def _observe_termination(self, reason: str, expression: Expression,
                             plan, elapsed: float) -> None:
        """Fold one terminated (not completed) query into observability:
        a ``queries.<reason>`` counter, an unconditional slow-query-log entry
        carrying the termination reason, and a trace event — and *not*
        ``queries.executed``, so terminated and completed work never blur."""
        self.metrics_registry.counter("queries." + reason).add()
        mode = plan.mode if plan is not None else "-"
        self.slow_query_log.record(repr(expression), mode, elapsed, 0,
                                   note="terminated: " + reason)
        self.tracer.event("query-terminated", reason=reason, seconds=elapsed)

    def _observe_query(self, expression: Expression, plan: PhysicalPlan,
                       result, elapsed: float) -> None:
        """Fold one executed query into the registry, the slow-query log, the
        cardinality-feedback store and the plan-regression watchdog."""
        registry = self.metrics_registry
        registry.counter("queries.executed").add()
        stats = result.stats
        registry.counter("rows.scanned").add(stats.tuples_scanned)
        registry.counter("rows.joined").add(stats.join_pairs_considered)
        registry.counter("rows.produced").add(stats.tuples_produced)
        registry.histogram("query.seconds", LATENCY_BUCKETS).observe(elapsed)
        registry.histogram("plan.batch_size", BATCH_SIZE_BUCKETS).observe(
            result.context.batch_size)
        # One pass over the paired plan nodes: Q-error gauges (the estimate-
        # quality signal), memory max-gauges, per-query peak memory, and the
        # feedback fold-in — observed rows_out per (subexpression fingerprint,
        # statistics version), which corrects future estimates of the same
        # subexpression (ROADMAP item 4's adaptive re-optimization bridge).
        # Only *mis*-estimates (Q-error ≥ the threshold) are folded in: an
        # accurate plan leaves no feedback behind, so its cache entry stays
        # hot instead of being re-planned after every execution.
        feedback = self.cardinality_feedback
        statistics_version = self.statistics.version
        peak_bytes = 0
        paired = pair_nodes_with_stats(plan, result.context)
        stats_of = {id(node): op_stats for node, op_stats in paired}
        for node, op_stats in paired:
            if op_stats is None:
                continue
            node_q = q_error(node.estimated_rows, op_stats.rows_out)
            registry.max_gauge("qerror." + node.name).observe(node_q)
            if "aggregate" in node.name:
                # rows folded through γ nodes; the paired qerror gauge above is
                # the group-count estimation quality signal for the same node
                registry.counter("rows.aggregated").add(op_stats.rows_in)
            if op_stats.peak_bytes:
                registry.max_gauge("memory." + node.name).observe(
                    op_stats.peak_bytes)
                peak_bytes = max(peak_bytes, op_stats.peak_bytes)
            if (node.fingerprint is not None and node_q is not None
                    and node_q >= QERROR_THRESHOLD
                    # bare scans are never estimated from feedback (the cost
                    # model prices them from live table sizes), so recording
                    # them would churn the version without improving a plan
                    and node.fingerprint[0] not in ("relation", "empty")):
                feedback.record(node.fingerprint, statistics_version,
                                node.feedback_tables or (), op_stats.rows_out)
                self._record_join_edges(node, op_stats, stats_of,
                                        statistics_version)
        registry.histogram("query.peak_bytes", MEMORY_BUCKETS).observe(
            peak_bytes)
        self._watch_plan(expression, plan, result, elapsed)
        if self._active_profile is not None:
            self._active_profile.observe({
                "expression": repr(expression),
                "mode": plan.mode,
                "seconds": elapsed,
                "rows": len(result.tuples),
                "peak_bytes": peak_bytes,
            })
        if elapsed >= self.slow_query_log.threshold:
            self.slow_query_log.observe(
                repr(expression), plan.mode, elapsed, len(result.tuples),
                node_q_errors(plan, result.context))
            self.tracer.event("slow-query", seconds=elapsed,
                              threshold=self.slow_query_log.threshold)

    def _record_join_edges(self, node, op_stats, stats_of,
                           statistics_version) -> None:
        """Derive an observed edge selectivity from a mis-estimated join node.

        ``rows_out / (rows_left × rows_right)`` of an executed single-attribute
        equi-join is the true selectivity of that join *edge*; keyed by the
        attribute and its carrier tables it corrects every candidate join over
        the same edge — including orders the search prices but never executed,
        which a per-subexpression cardinality correction cannot reach.
        Multi-attribute joins are skipped: the combined fraction cannot be
        attributed to individual attributes without guessing.
        """
        on = getattr(node, "on", None)
        if on is None or len(on) != 1:
            return
        children = node.children
        if len(children) == 2:
            sides = [stats_of.get(id(child)) for child in children]
            if any(side is None for side in sides):
                return
            rows = [side.rows_out for side in sides]
            tables = frozenset((children[0].feedback_tables or frozenset())
                               | (children[1].feedback_tables or frozenset()))
        elif len(children) == 1 and getattr(node, "relation", None) is not None:
            # Index-lookup join: the inner side is a base relation probed in
            # place; its current size stands in for the scanned cardinality.
            outer = stats_of.get(id(children[0]))
            if outer is None:
                return
            try:
                inner_rows = len(self.table(node.relation))
            except Exception:
                return
            rows = [outer.rows_out, inner_rows]
            tables = frozenset((children[0].feedback_tables or frozenset())
                               | {node.relation})
        else:
            return
        if rows[0] <= 0 or rows[1] <= 0:
            return
        attribute = next(iter(on)).name
        carriers = attribute_carriers(self, tables, attribute)
        if not carriers:
            return
        selectivity = op_stats.rows_out / float(rows[0] * rows[1])
        self.cardinality_feedback.record_edge(
            attribute, carriers, statistics_version, selectivity)

    def _watch_plan(self, expression: Expression, plan: PhysicalPlan,
                    result, elapsed: float) -> None:
        """Hand one execution to the watchdog; surface what it detected."""
        labels = tuple(node.label() for node in plan_nodes(plan))
        summary = {
            "operators": list(labels),
            "mode": plan.mode,
            "est_cost": plan.root.estimated_cost,
        }
        plan_change, regression = self.plan_watchdog.observe(
            expression_key(expression), labels, summary, elapsed)
        if plan_change is not None:
            self.tracer.event("plan-change",
                              before=plan_change["before"],
                              after=plan_change["after"],
                              baseline_seconds=plan_change["baseline_seconds"])
        if regression is not None:
            self.tracer.event("plan-regression",
                              seconds=regression["seconds"],
                              baseline_seconds=regression["baseline_seconds"],
                              factor=regression["factor"],
                              suspect_plan_change=regression["suspect_plan_change"])
            suspect = regression["suspect_plan_change"]
            note = "plan-regression: {:.1f}x vs baseline {:.4f}s".format(
                regression["factor"], regression["baseline_seconds"])
            if suspect is not None:
                note += "; suspect plan change {} -> {}".format(
                    suspect["before"]["operators"], suspect["after"]["operators"])
            self.slow_query_log.record(
                repr(expression), plan.mode, elapsed, len(result.tuples),
                node_q_errors(plan, result.context), note=note)

    def metrics(self) -> Dict[str, object]:
        """A JSON-friendly snapshot of everything the engine measured so far:
        the metric instruments, the plan cache (with hit rate), the slow-query
        log, the cardinality-feedback store and the plan watchdog."""
        cache = self.physical_executor.cache_info()
        lookups = cache["hits"] + cache["misses"]
        snapshot = {
            "metrics": self.metrics_registry.snapshot(),
            "plan_cache": dict(cache, hit_rate=(cache["hits"] / lookups
                                                if lookups else None)),
            "slow_queries": self.slow_query_log.as_dict(),
            "feedback": self.cardinality_feedback.as_dict(),
            "watchdog": self.plan_watchdog.as_dict(),
        }
        if self.durability is not None:
            snapshot["durability"] = self.durability.as_dict()
        if self.admission is not None:
            snapshot["admission"] = self.admission.as_dict()
        return snapshot

    def reset_metrics(self) -> None:
        """Re-baseline the observability layer without rebuilding the database.

        Clears the metric registry, the slow-query log (its threshold stays),
        the cardinality-feedback store and the watchdog's latency baselines —
        what benchmarks and long-lived sessions need between measurement
        windows.  Clearing the feedback store bumps its version, so previously
        cached feedback-informed plans are re-planned from statistics alone.
        """
        self.metrics_registry.reset()
        self.slow_query_log.clear()
        self.cardinality_feedback.clear()
        self.plan_watchdog.clear()

    def profile(self) -> WorkloadProfile:
        """A workload capture window::

            with database.profile() as prof:
                run_workload(database)
            report = prof.report   # queries, plans, feedback deltas, regressions

        The report dict carries every query executed inside the window (mode,
        latency, rows, peak operator memory), the feedback-store delta, the
        plan changes and regressions the watchdog flagged, and a full
        :meth:`metrics` snapshot — the shape the benchmark reporting layer
        embeds.
        """
        return WorkloadProfile(self)

    def prometheus_metrics(self, prefix: str = "repro") -> str:
        """The metric registry in the Prometheus text exposition format."""
        return prometheus_text(self.metrics_registry, prefix=prefix)

    def metrics_snapshot(self) -> Dict[str, object]:
        """A versioned JSON snapshot envelope: the registry plus the engine
        sections of :meth:`metrics` (plan cache, slow queries, feedback,
        watchdog) under a ``format``/``version`` header."""
        engine = self.metrics()
        del engine["metrics"]
        return json_snapshot(self.metrics_registry, extra=engine)

    def plan(self, expression: Expression, optimize: bool = True,
             mode: Optional[str] = None,
             batch_size: Optional[int] = None) -> PhysicalPlan:
        """The physical plan the database would run for ``expression``.

        With ``optimize=True`` the AD-driven rewrites are applied first, so the
        plan shows what actually executes; ``mode`` selects ``"batch"`` or
        ``"row"`` lowering (``plan.mode`` reports what came out) and
        ``batch_size`` pins the plan's batch size (``None`` = adaptive);
        ``plan.explain()`` renders it.
        """
        if optimize:
            planner = Planner(catalog=self)
            expression, _report = planner.optimize(expression)
        return self.physical_executor.plan(expression,
                                           vectorize=self._vectorize_flag(mode),
                                           batch_size=batch_size)

    def explain(self, expression: Expression, optimize: bool = True,
                mode: Optional[str] = None,
                batch_size: Optional[int] = None) -> str:
        """Human-readable plan for ``expression``, with execution mode, the
        batch-size decision and plan-cache counters in the header::

            mode=batch  batch_size=1365  plan-cache: hits=3 misses=1
            hash-join[on={event_id}]  [batch] ...
        """
        plan = self.plan(expression, optimize=optimize, mode=mode,
                         batch_size=batch_size)
        cache = self.physical_executor.cache_info()
        header = "mode={}  batch_size={}  plan-cache: hits={} misses={}".format(
            plan.mode, plan.batch_size if plan.batch_size is not None else "default",
            cache["hits"], cache["misses"])
        return header + "\n" + plan.explain()

    def explain_analyze(self, expression: Expression, optimize: bool = True,
                        mode: Optional[str] = None,
                        batch_size: Optional[int] = None) -> ExplainAnalyzeReport:
        """Execute ``expression`` and render the plan annotated with what
        actually happened: per node, actual vs estimated rows, the Q-error
        ``max(est/actual, actual/est)``, inclusive wall time and batch count.

        The query **really runs** — results and counters are identical to
        :meth:`execute` (asserted by the test suite) and the execution feeds
        :meth:`metrics` and the slow-query log exactly like a normal query.
        ``print(db.explain_analyze(expr))`` shows the transcript;
        ``report.result`` carries the tuples and the per-operator breakdown,
        ``report.q_errors`` the per-node estimate quality.
        """
        with self.tracer.span("query.explain-analyze"):
            if optimize:
                with self.tracer.span("rewrite"):
                    planner = Planner(catalog=self)
                    expression, _report = planner.optimize(expression)
            plan, result = self._run_physical(
                expression, self._vectorize_flag(mode), batch_size)
        header = "mode={}  batch_size={}  wall={:.3f}ms  rows={}".format(
            plan.mode, result.context.batch_size,
            result.wall_seconds * 1000.0, len(result.tuples))
        text = render_explain_analyze(plan, result, header=header)
        return ExplainAnalyzeReport(plan, result, text)

    def query(self, text: str, optimize: bool = True,
              executor: str = "physical", mode: Optional[str] = None,
              batch_size: Optional[int] = None,
              timeout: Optional[float] = None,
              cancel_token=None,
              memory_budget: Optional[int] = None,
              spill: Optional[bool] = None,
              query_class: str = "default") -> EvaluationResult:
        """Parse and evaluate a textual query (see :mod:`repro.query`).

        ``db.query("SELECT name FROM employees WHERE jobtype = 'secretary'")``

        The governance arguments (``timeout``, ``cancel_token``,
        ``memory_budget``, ``spill``, ``query_class``) mean exactly what they
        do on :meth:`execute`.
        """
        from repro.query import parse_query

        with self.tracer.span("query", text=text):
            with self.tracer.span("parse"):
                expression = parse_query(text)
            return self.execute(expression, optimize=optimize, executor=executor,
                                mode=mode, batch_size=batch_size,
                                timeout=timeout, cancel_token=cancel_token,
                                memory_budget=memory_budget, spill=spill,
                                query_class=query_class)

    # -- transactions ----------------------------------------------------------------------------------

    def transaction(self) -> "_Transaction":
        """An all-or-nothing scope over every table of the database.

        ::

            with db.transaction():
                db.insert("employees", {...})
                db.insert("employees", {...})   # a violation here rolls both back

        On normal exit the changes stay; when the block raises, every table is
        restored to its state at entry and the exception propagates.
        """
        return _Transaction(self)

    def __repr__(self) -> str:
        return "Database(tables={})".format(
            {name: len(self._tables[name]) for name in self.catalog.names()}
        )


class _Transaction:
    """Context manager implementing :meth:`Database.transaction`.

    The snapshot covers table *contents*; schema changes (``create_table`` /
    ``drop_table``) inside a transaction are intentionally not undone — they are DDL,
    and the paper's constraints concern the instance level.  DML is rolled back
    even on tables the transaction itself created (the table survives, emptied),
    matching what write-ahead replay reconstructs: DDL records are autonomous,
    transactional DML without a commit is discarded.

    Rollback also rewinds the planning-relevant side state the transaction
    touched: the statistics catalog (stale flags, incremental row counts,
    version) and the cardinality-feedback store return to their entry state, so
    plans cached before the transaction stay valid instead of being stranded by
    version churn that no surviving data justifies.  Plans cached *during* the
    transaction are evicted first — their version numbers will be reused for
    different future states.

    On a durable database the scope maps to a write-ahead transaction: records
    inside carry a shared ``txn`` id, the commit record is fsynced on clean
    exit, and an exception appends an abort record (best effort — replay
    discards uncommitted transactions regardless).
    """

    def __init__(self, database: "Database"):
        self._database = database
        self._snapshots: Dict[str, Set[FlexTuple]] = {}
        self._statistics_state: Optional[Dict[str, object]] = None
        self._statistics_version = 0
        self._feedback_version = 0
        self._durability = None

    def __enter__(self) -> "Database":
        database = self._database
        self._snapshots = {
            name: database.table(name).snapshot() for name in database.tables()
        }
        self._statistics_state = database.statistics.capture()
        self._statistics_version = database.statistics.version
        self._feedback_version = database.cardinality_feedback.version
        if database.durability is not None and not database._journal_suppressed:
            self._durability = database.durability
            self._durability.begin()
        return database

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        database = self._database
        if exc_type is None:
            if self._durability is not None:
                self._durability.commit()
            return False
        if self._durability is not None:
            self._durability.abort()
        for name in database.tables():
            if name in self._snapshots:
                continue
            # Created inside the failed transaction: the schema stays (DDL),
            # any tuples inserted since do not (DML).
            table = database.table(name)
            if len(table):
                table.restore(set())
        for name, snapshot in self._snapshots.items():
            if name not in database.catalog:
                continue
            table = database.table(name)
            # Only touched tables are restored: an untouched table keeps its
            # indexes and its fresh planner statistics.
            if table.snapshot() != snapshot:
                table.restore(snapshot)
        if database._physical_executor is not None:
            database._physical_executor.evict_plans_after(
                self._statistics_version, self._feedback_version)
        database.statistics.rollback_capture(self._statistics_state)
        database.cardinality_feedback.rollback(
            self._feedback_version, self._statistics_version)
        return False


def _as_tuple(item) -> FlexTuple:
    return item if isinstance(item, FlexTuple) else FlexTuple(item)
