"""Incremental constraint enforcement for DML.

The checks performed when a tuple enters (or changes in) a table:

1. **scheme admission** — the tuple's attribute combination must be in the DNF of
   the table's flexible scheme (decided lazily, without unfolding);
2. **domain conformance** — every value must lie in its declared domain;
3. **key** — the tuple must carry the key attributes and no stored tuple may share
   its key value;
4. **explicit attribute dependencies** — a per-tuple check: the variant selected by
   the tuple's determinant values dictates exactly which dependent attributes the
   tuple must carry (Definition 2.1);
5. **abbreviated attribute dependencies and functional dependencies** — two-tuple
   constraints, checked incrementally against the stored tuples that agree on the
   determinant (served by a hash index on the determinant).

Every violation raises a subclass of :class:`~repro.errors.ConstraintViolation` (or
:class:`~repro.errors.TypeCheckError` for levels 1–2) naming the offending
constraint, so callers can distinguish type errors from integrity errors.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.dependencies import (
    AttributeDependency,
    Dependency,
    ExplicitAttributeDependency,
    FunctionalDependency,
)
from repro.engine.catalog import TableDefinition
from repro.engine.indexes import HashIndex
from repro.errors import ConstraintViolation, DependencyViolation, KeyViolation, TypeCheckError
from repro.model.attributes import AttributeSet
from repro.model.tuples import FlexTuple


class KeyConstraint:
    """A primary-key constraint: presence of the key attributes plus uniqueness."""

    def __init__(self, attributes: AttributeSet):
        self.attributes = attributes

    def check(self, tup: FlexTuple, index: HashIndex, ignore: Optional[FlexTuple] = None) -> None:
        if not tup.is_defined_on(self.attributes):
            raise KeyViolation(
                "tuple lacks key attribute(s) {}".format(self.attributes - tup.attributes)
            )
        existing = index.lookup(tup)
        existing.discard(tup)
        if ignore is not None:
            existing.discard(ignore)
        if existing:
            raise KeyViolation(
                "key value {} already present".format(tuple(tup[a] for a in self.attributes))
            )

    def __repr__(self) -> str:
        return "KeyConstraint({})".format(self.attributes)


class ConstraintChecker:
    """Bundles the constraint logic for one table definition.

    The checker owns the dependency indexes (one per determinant) but not the data;
    the table calls :meth:`register_tuple` / :meth:`unregister_tuple` to keep them in
    sync and :meth:`check_insert` / :meth:`check_update` before mutating its tuple
    set.  The ``check_scheme`` / ``check_domains`` / ``check_dependencies`` switches
    allow the benchmarks to measure each level separately.
    """

    def __init__(
        self,
        definition: TableDefinition,
        check_scheme: bool = True,
        check_domains: bool = True,
        check_dependencies: bool = True,
    ):
        self.definition = definition
        self.check_scheme = check_scheme
        self.check_domains = check_domains
        self.check_dependencies = check_dependencies
        self.key_constraint = (
            KeyConstraint(definition.key) if definition.key is not None else None
        )
        self.key_index = HashIndex(definition.key) if definition.key is not None else None
        self._secondary_indexes: List[HashIndex] = [
            HashIndex(attributes) for attributes in getattr(definition, "indexes", [])
        ]
        self._dependency_indexes: Dict[AttributeSet, HashIndex] = {}
        if check_dependencies:
            for dependency in definition.dependencies:
                if isinstance(dependency, (AttributeDependency, FunctionalDependency)) \
                        and not isinstance(dependency, ExplicitAttributeDependency):
                    self._dependency_indexes.setdefault(dependency.lhs, HashIndex(dependency.lhs))

    # -- index maintenance -------------------------------------------------------------------

    def indexes(self) -> List[HashIndex]:
        """Every index the checker maintains (key index first), for scan reuse."""
        result: List[HashIndex] = []
        if self.key_index is not None:
            result.append(self.key_index)
        result.extend(self._secondary_indexes)
        result.extend(self._dependency_indexes.values())
        return result

    def register_tuple(self, tup: FlexTuple) -> None:
        """Add a stored tuple to the key, secondary and dependency indexes."""
        if self.key_index is not None:
            self.key_index.add(tup)
        for index in self._secondary_indexes:
            index.add(tup)
        for index in self._dependency_indexes.values():
            index.add(tup)

    def unregister_tuple(self, tup: FlexTuple) -> None:
        """Remove a stored tuple from the key, secondary and dependency indexes."""
        if self.key_index is not None:
            self.key_index.remove(tup)
        for index in self._secondary_indexes:
            index.remove(tup)
        for index in self._dependency_indexes.values():
            index.remove(tup)

    # -- checks --------------------------------------------------------------------------------

    def check_shape(self, tup: FlexTuple) -> None:
        """Levels 1–2: scheme admission and domain conformance."""
        if self.check_scheme and not self.definition.scheme.admits(tup.attributes):
            raise TypeCheckError(
                "attribute combination {} is not admitted by the scheme of table {!r}".format(
                    tup.attributes, self.definition.name
                )
            )
        if self.check_domains:
            for name, value in tup.items():
                domain = self.definition.domains.get(name)
                if domain is not None and not domain.contains(value):
                    raise TypeCheckError(
                        "value {!r} of attribute {!r} violates its domain in table {!r}".format(
                            value, name, self.definition.name
                        )
                    )

    def check_insert(self, tup: FlexTuple, ignore: Optional[FlexTuple] = None) -> None:
        """All levels for an incoming tuple.

        ``ignore`` names a stored tuple that is about to be replaced (updates): it is
        excluded from the uniqueness and pair-wise dependency comparisons.
        """
        self.check_shape(tup)
        if self.key_constraint is not None:
            self.key_constraint.check(tup, self.key_index, ignore=ignore)
        if not self.check_dependencies:
            return
        for dependency in self.definition.dependencies:
            if isinstance(dependency, ExplicitAttributeDependency):
                if not dependency.check_tuple(tup):
                    raise DependencyViolation(
                        dependency,
                        "tuple {!r} violates {!r}: with {} = {!r} exactly the attributes {} "
                        "must be present, found {}".format(
                            tup, dependency, dependency.lhs,
                            tup.project_existing(dependency.lhs),
                            dependency.required_attributes(tup),
                            tup.attributes & dependency.rhs,
                        ),
                        offending=tup,
                    )
            else:
                self._check_pairwise(dependency, tup, ignore=ignore)

    def _check_pairwise(self, dependency: Dependency, tup: FlexTuple,
                        ignore: Optional[FlexTuple] = None) -> None:
        if not tup.is_defined_on(dependency.lhs):
            return
        index = self._dependency_indexes.get(dependency.lhs)
        if index is None:
            return
        partners = index.lookup(tup)
        partners.discard(tup)
        if ignore is not None:
            partners.discard(ignore)
        for partner in partners:
            if isinstance(dependency, FunctionalDependency):
                ok = (
                    partner.is_defined_on(dependency.rhs)
                    and tup.is_defined_on(dependency.rhs)
                    and all(partner[a] == tup[a] for a in dependency.rhs)
                )
            else:
                ok = (partner.attributes & dependency.rhs) == (tup.attributes & dependency.rhs)
            if not ok:
                raise DependencyViolation(
                    dependency,
                    "tuple {!r} conflicts with stored tuple {!r} on {!r}".format(
                        tup, partner, dependency
                    ),
                    offending=(partner, tup),
                )

    def check_update(self, old: FlexTuple, new: FlexTuple) -> None:
        """Check a replacement tuple, ignoring the tuple it replaces."""
        self.check_insert(new, ignore=old)
