"""In-memory storage engine for flexible relations.

The engine is the operational substrate the paper assumes: a catalog of flexible
relations with declared domains, keys, functional and (explicit) attribute
dependencies; DML that type-checks every insertion and update against all of them
(Section 3.1's "type checking based on ADs is initiated during insertion, update and
data retrieval"); hash indexes on the determinants so dependency checking stays
incremental; and a query entry point that evaluates — optionally after AD-driven
optimization — algebra expressions over the stored relations.
"""

from repro.engine.indexes import HashIndex
from repro.engine.catalog import Catalog, TableDefinition
from repro.engine.constraints import ConstraintChecker, KeyConstraint
from repro.engine.database import Database, Table
from repro.engine.serialization import (
    SerializationError,
    atomic_write_json,
    dump_database,
    dumps_database,
    load_database,
    loads_database,
)

__all__ = [
    "HashIndex",
    "Catalog",
    "TableDefinition",
    "ConstraintChecker",
    "KeyConstraint",
    "Database",
    "Table",
    "SerializationError",
    "atomic_write_json",
    "dump_database",
    "dumps_database",
    "load_database",
    "loads_database",
]
