"""Catalog: table definitions (scheme, domains, key, dependencies).

A :class:`TableDefinition` bundles everything the engine needs to know about one
flexible relation; the :class:`Catalog` is the registry the database, the query
evaluator and the optimizer consult.  Definitions are declarative — the enforcement
logic lives in :mod:`repro.engine.constraints`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.dependencies import Dependency
from repro.errors import CatalogError
from repro.model.attributes import AttributeSet, attrset
from repro.model.domains import Domain
from repro.model.scheme import FlexibleScheme


class TableDefinition:
    """The declarative description of one flexible relation.

    Parameters
    ----------
    name:
        Relation name, unique within a catalog.
    scheme:
        The flexible scheme tuples must conform to.
    domains:
        Optional mapping from attribute name to domain.
    key:
        Optional primary key (an attribute set all tuples must carry, unique values).
    dependencies:
        Declared dependencies (explicit ADs, abbreviated ADs, FDs) to be enforced.
    indexes:
        Optional secondary hash indexes (each an attribute set) maintained by the
        engine; index-aware scans and index-lookup joins consult them.
    """

    def __init__(
        self,
        name: str,
        scheme: FlexibleScheme,
        domains: Optional[Dict[str, Domain]] = None,
        key=None,
        dependencies: Optional[Sequence[Dependency]] = None,
        indexes: Optional[Sequence] = None,
    ):
        if not name:
            raise CatalogError("a table needs a non-empty name")
        self.name = name
        self.scheme = scheme
        self.domains: Dict[str, Domain] = dict(domains or {})
        self.key: Optional[AttributeSet] = attrset(key) if key is not None else None
        self.dependencies: List[Dependency] = list(dependencies or [])
        self.indexes: List[AttributeSet] = [attrset(index) for index in (indexes or [])]
        self._validate()

    def _validate(self) -> None:
        scheme_attributes = self.scheme.attributes
        for attribute_name in self.domains:
            if attribute_name not in scheme_attributes:
                raise CatalogError(
                    "domain declared for {!r}, which is not an attribute of table {!r}".format(
                        attribute_name, self.name
                    )
                )
        if self.key is not None and not self.key.issubset(scheme_attributes):
            raise CatalogError(
                "key {} of table {!r} uses attributes outside the scheme".format(self.key, self.name)
            )
        for dependency in self.dependencies:
            if not dependency.attributes.issubset(scheme_attributes):
                raise CatalogError(
                    "dependency {!r} of table {!r} uses attributes outside the scheme".format(
                        dependency, self.name
                    )
                )
        for index in self.indexes:
            if not index:
                raise CatalogError(
                    "table {!r} declares an index over no attributes".format(self.name)
                )
            if not index.issubset(scheme_attributes):
                raise CatalogError(
                    "index {} of table {!r} uses attributes outside the scheme".format(
                        index, self.name
                    )
                )

    @property
    def attributes(self) -> AttributeSet:
        """All attributes of the table's scheme."""
        return self.scheme.attributes

    def __repr__(self) -> str:
        return "TableDefinition({!r}, attributes={}, key={}, dependencies={})".format(
            self.name, self.attributes, self.key, len(self.dependencies)
        )


class Catalog:
    """A registry of table definitions.

    The catalog carries a monotonically increasing :attr:`version`, bumped on
    every schema change (register / unregister).  The physical executor keys its
    plan cache on this version, so cached plans are invalidated exactly when the
    schema they were planned against changes.
    """

    def __init__(self):
        self._definitions: Dict[str, TableDefinition] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """The schema version: incremented by every register / unregister."""
        return self._version

    def register(self, definition: TableDefinition) -> TableDefinition:
        """Add a definition; duplicate names are rejected."""
        if definition.name in self._definitions:
            raise CatalogError("table {!r} is already registered".format(definition.name))
        self._definitions[definition.name] = definition
        self._version += 1
        return definition

    def unregister(self, name: str) -> None:
        """Remove a definition."""
        if name not in self._definitions:
            raise CatalogError("unknown table {!r}".format(name))
        del self._definitions[name]
        self._version += 1

    def definition(self, name: str) -> TableDefinition:
        """The definition registered under ``name``."""
        try:
            return self._definitions[name]
        except KeyError:
            raise CatalogError("unknown table {!r}".format(name)) from None

    def dependencies(self, name: str) -> List[Dependency]:
        """Declared dependencies of a table (the optimizer's entry point)."""
        return list(self.definition(name).dependencies)

    def names(self) -> List[str]:
        """Registered table names, sorted."""
        return sorted(self._definitions)

    def __contains__(self, name: str) -> bool:
        return name in self._definitions

    def __len__(self) -> int:
        return len(self._definitions)

    def __iter__(self):
        return iter(self.names())

    def __repr__(self) -> str:
        return "Catalog({})".format(self.names())
