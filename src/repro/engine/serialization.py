"""Serialization of schemas, dependencies and whole databases to and from JSON.

A database — catalog (schemes, domains, keys, dependencies) plus the stored tuples —
can be written to a JSON document and read back, so designs and datasets can be
shipped, versioned, and loaded by the examples and benchmarks without re-running the
generators.  Only JSON-representable attribute values (numbers, strings, booleans,
``None``) are supported; this covers every workload in the repository.

Public entry points:

* :func:`dump_database` / :func:`load_database` — file or file-like objects,
* :func:`database_to_dict` / :func:`database_from_dict` — plain dictionaries,
* the per-object converters (``scheme_to_dict``, ``dependency_to_dict``, ...) for
  callers that only need a piece.

Fresh planner statistics (``Database.analyze()``) are written alongside the data
and restored as fresh on load, so shipped datasets plan well without re-running
ANALYZE.  Stale statistics are not persisted.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.dependencies import (
    AttributeDependency,
    Dependency,
    ExplicitAttributeDependency,
    FunctionalDependency,
    Variant,
)
from repro.engine.database import Database
from repro.errors import ReproError
from repro.model.attributes import Attribute
from repro.model.domains import (
    AnyDomain,
    BoolDomain,
    Domain,
    EnumDomain,
    FloatDomain,
    IntDomain,
    RangeDomain,
    StringDomain,
)
from repro.model.scheme import FlexibleScheme, UnfoldedScheme
from repro.stats.statistics import TableStatistics

#: bumped when the JSON layout changes incompatibly
FORMAT_VERSION = 1


class SerializationError(ReproError):
    """Raised when a document cannot be serialized or deserialized."""


# -- schemes ------------------------------------------------------------------------------------


def scheme_to_dict(scheme: FlexibleScheme) -> dict:
    """Convert a flexible scheme (or unfolded scheme) to a JSON-ready dictionary."""
    if isinstance(scheme, UnfoldedScheme):
        return {
            "kind": "unfolded",
            "combinations": sorted(sorted(a.name for a in combo) for combo in scheme.dnf()),
        }
    components = []
    for component in scheme.components:
        if isinstance(component, Attribute):
            components.append({"kind": "attribute", "name": component.name})
        else:
            components.append(scheme_to_dict(component))
    return {
        "kind": "scheme",
        "at_least": scheme.at_least,
        "at_most": scheme.at_most,
        "components": components,
    }


def scheme_from_dict(data: dict) -> FlexibleScheme:
    """Rebuild a flexible scheme from :func:`scheme_to_dict` output."""
    kind = data.get("kind")
    if kind == "unfolded":
        combos = {frozenset(Attribute(name) for name in combo) for combo in data["combinations"]}
        return UnfoldedScheme(combos)
    if kind != "scheme":
        raise SerializationError("not a scheme document: {!r}".format(kind))
    components = []
    for component in data["components"]:
        if component.get("kind") == "attribute":
            components.append(component["name"])
        else:
            components.append(scheme_from_dict(component))
    return FlexibleScheme(data["at_least"], data["at_most"], components)


# -- domains -------------------------------------------------------------------------------------


def domain_to_dict(domain: Domain) -> dict:
    """Convert a domain to a JSON-ready dictionary."""
    if isinstance(domain, EnumDomain):
        return {"kind": "enum", "values": list(domain.values()), "name": domain.name}
    if isinstance(domain, RangeDomain):
        return {"kind": "range", "low": domain.low, "high": domain.high,
                "integral": domain.integral, "name": domain.name}
    if isinstance(domain, StringDomain):
        return {"kind": "string", "max_length": domain.max_length}
    if isinstance(domain, IntDomain):
        return {"kind": "int"}
    if isinstance(domain, FloatDomain):
        return {"kind": "float"}
    if isinstance(domain, BoolDomain):
        return {"kind": "bool"}
    if isinstance(domain, AnyDomain):
        return {"kind": "any"}
    raise SerializationError("cannot serialize domain {!r}".format(domain))


def domain_from_dict(data: dict) -> Domain:
    """Rebuild a domain from :func:`domain_to_dict` output."""
    kind = data.get("kind")
    if kind == "enum":
        return EnumDomain(data["values"], name=data.get("name", "enum"))
    if kind == "range":
        return RangeDomain(data["low"], data["high"], integral=data.get("integral", False),
                           name=data.get("name", "range"))
    if kind == "string":
        return StringDomain(max_length=data.get("max_length"))
    if kind == "int":
        return IntDomain()
    if kind == "float":
        return FloatDomain()
    if kind == "bool":
        return BoolDomain()
    if kind == "any":
        return AnyDomain()
    raise SerializationError("unknown domain kind {!r}".format(kind))


# -- dependencies -----------------------------------------------------------------------------------


def dependency_to_dict(dependency: Dependency) -> dict:
    """Convert an AD / FD / explicit AD to a JSON-ready dictionary."""
    if isinstance(dependency, ExplicitAttributeDependency):
        return {
            "kind": "explicit-ad",
            "lhs": list(dependency.lhs.names),
            "rhs": list(dependency.rhs.names),
            "variants": [
                {
                    "name": variant.name,
                    "attributes": list(variant.attributes.names),
                    "values": [value.as_dict() for value in variant.values],
                }
                for variant in dependency.variants
            ],
        }
    if isinstance(dependency, FunctionalDependency):
        return {"kind": "fd", "lhs": list(dependency.lhs.names), "rhs": list(dependency.rhs.names)}
    if isinstance(dependency, AttributeDependency):
        return {"kind": "ad", "lhs": list(dependency.lhs.names), "rhs": list(dependency.rhs.names)}
    raise SerializationError("cannot serialize dependency {!r}".format(dependency))


def dependency_from_dict(data: dict) -> Dependency:
    """Rebuild a dependency from :func:`dependency_to_dict` output."""
    kind = data.get("kind")
    if kind == "explicit-ad":
        variants = [
            Variant(entry["values"], entry["attributes"], name=entry.get("name"))
            for entry in data["variants"]
        ]
        return ExplicitAttributeDependency(data["lhs"], data["rhs"], variants)
    if kind == "fd":
        return FunctionalDependency(data["lhs"], data["rhs"])
    if kind == "ad":
        return AttributeDependency(data["lhs"], data["rhs"])
    raise SerializationError("unknown dependency kind {!r}".format(kind))


# -- whole databases -----------------------------------------------------------------------------------


def database_to_dict(database: Database, include_data: bool = True) -> dict:
    """Convert a database (catalog and, optionally, the stored tuples) to a dictionary.

    Fresh planner statistics ride along with the data (they describe exactly the
    serialized tuples); without data, or when stale, they are omitted.
    """
    tables = []
    for name in database.tables():
        definition = database.catalog.definition(name)
        entry = {
            "name": name,
            "scheme": scheme_to_dict(definition.scheme),
            "domains": {attr: domain_to_dict(domain) for attr, domain in definition.domains.items()},
            "key": list(definition.key.names) if definition.key is not None else None,
            "dependencies": [dependency_to_dict(d) for d in definition.dependencies],
            "indexes": [list(index.names) for index in definition.indexes],
        }
        if include_data:
            entry["tuples"] = sorted(
                (t.as_dict() for t in database.table(name).tuples),
                key=lambda item: sorted(item.items(), key=lambda pair: (pair[0], repr(pair[1]))),
            )
            statistics = database.statistics.get(name)
            if statistics is not None:
                entry["statistics"] = statistics.to_dict()
        tables.append(entry)
    return {"format_version": FORMAT_VERSION, "tables": tables}


def database_from_dict(data: dict, enforce_constraints: bool = True) -> Database:
    """Rebuild a database from :func:`database_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError("unsupported format version {!r}".format(version))
    database = Database(enforce_constraints=enforce_constraints)
    for entry in data.get("tables", []):
        table = database.create_table(
            entry["name"],
            scheme_from_dict(entry["scheme"]),
            domains={attr: domain_from_dict(d) for attr, d in entry.get("domains", {}).items()},
            key=entry.get("key"),
            dependencies=[dependency_from_dict(d) for d in entry.get("dependencies", [])],
            indexes=entry.get("indexes"),
        )
        for values in entry.get("tuples", []):
            table.insert(values)
        statistics = entry.get("statistics")
        if statistics is not None:
            # The statistics describe exactly the tuples just loaded: restore
            # them as fresh so the planner can use them without a re-ANALYZE.
            database.statistics.restore(entry["name"], TableStatistics.from_dict(statistics))
    return database


def dump_database(database: Database, file, include_data: bool = True, indent: int = 2) -> None:
    """Write a database to an open text file (or any object with ``write``)."""
    json.dump(database_to_dict(database, include_data=include_data), file, indent=indent,
              sort_keys=True)


def dumps_database(database: Database, include_data: bool = True) -> str:
    """Return the JSON document for a database as a string."""
    return json.dumps(database_to_dict(database, include_data=include_data), sort_keys=True)


def load_database(file, enforce_constraints: bool = True) -> Database:
    """Read a database from an open text file (or any object with ``read``)."""
    return database_from_dict(json.load(file), enforce_constraints=enforce_constraints)


def loads_database(text: str, enforce_constraints: bool = True) -> Database:
    """Read a database from a JSON string."""
    return database_from_dict(json.loads(text), enforce_constraints=enforce_constraints)
