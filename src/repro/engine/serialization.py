"""Serialization of schemas, dependencies and whole databases to and from JSON.

A database — catalog (schemes, domains, keys, dependencies) plus the stored tuples —
can be written to a JSON document and read back, so designs and datasets can be
shipped, versioned, and loaded by the examples and benchmarks without re-running the
generators.  Only JSON-representable attribute values (numbers, strings, booleans,
``None``) are supported; this covers every workload in the repository.

Public entry points:

* :func:`dump_database` / :func:`load_database` — file paths or file-like objects;
  given a *path*, the dump is **atomic** (temp file + fsync + ``os.replace``), so a
  crash mid-dump never leaves a half-written snapshot behind — the checkpointer of
  :mod:`repro.storage` reuses the same :func:`atomic_write_json` primitive,
* :func:`database_to_dict` / :func:`database_from_dict` — plain dictionaries, with
  :func:`populate_database_from_dict` loading into an existing (empty) database,
* the per-object converters (``scheme_to_dict``, ``dependency_to_dict``, ...) for
  callers that only need a piece.

Malformed input never surfaces as a raw ``KeyError`` or ``TypeError``: every
deserializer raises :class:`SerializationError` naming the offending document path
(e.g. ``tables[2].dependencies[0]``), and a document whose ``format_version`` this
build does not understand is rejected with a message saying which version it reads.

Fresh planner statistics (``Database.analyze()``) are written alongside the data
and restored as fresh on load, so shipped datasets plan well without re-running
ANALYZE.  Stale statistics are not persisted.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional

from repro.core.dependencies import (
    AttributeDependency,
    Dependency,
    ExplicitAttributeDependency,
    FunctionalDependency,
    Variant,
)
from repro.engine.database import Database
from repro.errors import ReproError
from repro.model.attributes import Attribute
from repro.model.domains import (
    AnyDomain,
    BoolDomain,
    Domain,
    EnumDomain,
    FloatDomain,
    IntDomain,
    RangeDomain,
    StringDomain,
)
from repro.model.scheme import FlexibleScheme, UnfoldedScheme
from repro.stats.statistics import TableStatistics

#: bumped when the JSON layout changes incompatibly
FORMAT_VERSION = 1


class SerializationError(ReproError):
    """Raised when a document cannot be serialized or deserialized."""


def _fail(path: str, problem: str) -> "SerializationError":
    prefix = "at {}: ".format(path) if path else ""
    return SerializationError(prefix + problem)


def _as_object(data, path: str) -> dict:
    if not isinstance(data, dict):
        raise _fail(path, "expected an object, got {}".format(type(data).__name__))
    return data


def _get(data, key: str, path: str):
    _as_object(data, path)
    try:
        return data[key]
    except KeyError:
        raise _fail(path, "missing required key {!r}".format(key)) from None


# -- atomic file writing ------------------------------------------------------------------------


def atomic_write_json(path: str, payload, indent: int = 2) -> str:
    """Write ``payload`` as JSON to ``path`` atomically; returns the path.

    The document is first written to a temp file in the same directory,
    flushed and fsynced, and only then renamed over the target with
    ``os.replace`` — a crash at any point leaves either the old file or the
    new one, never a torn hybrid.  The temp file is removed on failure.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(descriptor, "w") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.remove(temp_path)
        except OSError:
            pass
        raise
    return path


def load_json_file(path: str):
    """Read a JSON document from ``path``; decoding problems raise
    :class:`SerializationError` instead of leaking ``json`` internals."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except json.JSONDecodeError as exc:
        raise SerializationError(
            "{}: not valid JSON ({})".format(path, exc)) from exc


# -- schemes ------------------------------------------------------------------------------------


def scheme_to_dict(scheme: FlexibleScheme) -> dict:
    """Convert a flexible scheme (or unfolded scheme) to a JSON-ready dictionary."""
    if isinstance(scheme, UnfoldedScheme):
        return {
            "kind": "unfolded",
            "combinations": sorted(sorted(a.name for a in combo) for combo in scheme.dnf()),
        }
    components = []
    for component in scheme.components:
        if isinstance(component, Attribute):
            components.append({"kind": "attribute", "name": component.name})
        else:
            components.append(scheme_to_dict(component))
    return {
        "kind": "scheme",
        "at_least": scheme.at_least,
        "at_most": scheme.at_most,
        "components": components,
    }


def scheme_from_dict(data: dict, path: str = "scheme") -> FlexibleScheme:
    """Rebuild a flexible scheme from :func:`scheme_to_dict` output."""
    kind = _as_object(data, path).get("kind")
    if kind == "unfolded":
        combinations = _get(data, "combinations", path)
        if not isinstance(combinations, list):
            raise _fail(path + ".combinations", "expected a list of combinations")
        try:
            combos = {frozenset(Attribute(name) for name in combo)
                      for combo in combinations}
        except (TypeError, ReproError) as exc:
            raise _fail(path + ".combinations", str(exc)) from exc
        return UnfoldedScheme(combos)
    if kind != "scheme":
        raise _fail(path, "not a scheme document: kind={!r}".format(kind))
    components = []
    raw_components = _get(data, "components", path)
    if not isinstance(raw_components, list):
        raise _fail(path + ".components", "expected a list of components")
    for index, component in enumerate(raw_components):
        component_path = "{}.components[{}]".format(path, index)
        _as_object(component, component_path)
        if component.get("kind") == "attribute":
            components.append(_get(component, "name", component_path))
        else:
            components.append(scheme_from_dict(component, path=component_path))
    try:
        return FlexibleScheme(_get(data, "at_least", path),
                              _get(data, "at_most", path), components)
    except (TypeError, ValueError, ReproError) as exc:
        raise _fail(path, "invalid scheme: {}".format(exc)) from exc


# -- domains -------------------------------------------------------------------------------------


def domain_to_dict(domain: Domain) -> dict:
    """Convert a domain to a JSON-ready dictionary."""
    if isinstance(domain, EnumDomain):
        return {"kind": "enum", "values": list(domain.values()), "name": domain.name}
    if isinstance(domain, RangeDomain):
        return {"kind": "range", "low": domain.low, "high": domain.high,
                "integral": domain.integral, "name": domain.name}
    if isinstance(domain, StringDomain):
        return {"kind": "string", "max_length": domain.max_length}
    if isinstance(domain, IntDomain):
        return {"kind": "int"}
    if isinstance(domain, FloatDomain):
        return {"kind": "float"}
    if isinstance(domain, BoolDomain):
        return {"kind": "bool"}
    if isinstance(domain, AnyDomain):
        return {"kind": "any"}
    raise SerializationError("cannot serialize domain {!r}".format(domain))


def domain_from_dict(data: dict, path: str = "domain") -> Domain:
    """Rebuild a domain from :func:`domain_to_dict` output."""
    kind = _as_object(data, path).get("kind")
    try:
        if kind == "enum":
            return EnumDomain(_get(data, "values", path), name=data.get("name", "enum"))
        if kind == "range":
            return RangeDomain(_get(data, "low", path), _get(data, "high", path),
                               integral=data.get("integral", False),
                               name=data.get("name", "range"))
        if kind == "string":
            return StringDomain(max_length=data.get("max_length"))
        if kind == "int":
            return IntDomain()
        if kind == "float":
            return FloatDomain()
        if kind == "bool":
            return BoolDomain()
        if kind == "any":
            return AnyDomain()
    except (TypeError, ValueError, ReproError) as exc:
        raise _fail(path, "invalid {} domain: {}".format(kind, exc)) from exc
    raise _fail(path, "unknown domain kind {!r}".format(kind))


# -- dependencies -----------------------------------------------------------------------------------


def dependency_to_dict(dependency: Dependency) -> dict:
    """Convert an AD / FD / explicit AD to a JSON-ready dictionary."""
    if isinstance(dependency, ExplicitAttributeDependency):
        return {
            "kind": "explicit-ad",
            "lhs": list(dependency.lhs.names),
            "rhs": list(dependency.rhs.names),
            "variants": [
                {
                    "name": variant.name,
                    "attributes": list(variant.attributes.names),
                    "values": [value.as_dict() for value in variant.values],
                }
                for variant in dependency.variants
            ],
        }
    if isinstance(dependency, FunctionalDependency):
        return {"kind": "fd", "lhs": list(dependency.lhs.names), "rhs": list(dependency.rhs.names)}
    if isinstance(dependency, AttributeDependency):
        return {"kind": "ad", "lhs": list(dependency.lhs.names), "rhs": list(dependency.rhs.names)}
    raise SerializationError("cannot serialize dependency {!r}".format(dependency))


def dependency_from_dict(data: dict, path: str = "dependency") -> Dependency:
    """Rebuild a dependency from :func:`dependency_to_dict` output."""
    kind = _as_object(data, path).get("kind")
    try:
        if kind == "explicit-ad":
            raw_variants = _get(data, "variants", path)
            if not isinstance(raw_variants, list):
                raise _fail(path + ".variants", "expected a list of variants")
            variants = []
            for index, entry in enumerate(raw_variants):
                variant_path = "{}.variants[{}]".format(path, index)
                _as_object(entry, variant_path)
                variants.append(Variant(_get(entry, "values", variant_path),
                                        _get(entry, "attributes", variant_path),
                                        name=entry.get("name")))
            return ExplicitAttributeDependency(_get(data, "lhs", path),
                                               _get(data, "rhs", path), variants)
        if kind == "fd":
            return FunctionalDependency(_get(data, "lhs", path), _get(data, "rhs", path))
        if kind == "ad":
            return AttributeDependency(_get(data, "lhs", path), _get(data, "rhs", path))
    except SerializationError:
        raise
    except (TypeError, ValueError, ReproError) as exc:
        raise _fail(path, "invalid {} dependency: {}".format(kind, exc)) from exc
    raise _fail(path, "unknown dependency kind {!r}".format(kind))


# -- table definitions ---------------------------------------------------------------------------


def table_definition_to_dict(definition) -> dict:
    """Convert a :class:`~repro.engine.catalog.TableDefinition` (schema only)."""
    return {
        "name": definition.name,
        "scheme": scheme_to_dict(definition.scheme),
        "domains": {attr: domain_to_dict(domain)
                    for attr, domain in definition.domains.items()},
        "key": list(definition.key.names) if definition.key is not None else None,
        "dependencies": [dependency_to_dict(d) for d in definition.dependencies],
        "indexes": [list(index.names) for index in definition.indexes],
    }


def table_definition_from_dict(entry: dict, path: str = "table") -> dict:
    """Decode a table-definition document into ``create_table`` keyword form."""
    _as_object(entry, path)
    name = _get(entry, "name", path)
    if not isinstance(name, str) or not name:
        raise _fail(path + ".name", "table name must be a non-empty string")
    raw_domains = entry.get("domains", {})
    _as_object(raw_domains, path + ".domains")
    raw_dependencies = entry.get("dependencies", [])
    if not isinstance(raw_dependencies, list):
        raise _fail(path + ".dependencies", "expected a list of dependencies")
    return {
        "name": name,
        "scheme": scheme_from_dict(_get(entry, "scheme", path),
                                   path=path + ".scheme"),
        "domains": {attr: domain_from_dict(d, path="{}.domains[{!r}]".format(path, attr))
                    for attr, d in raw_domains.items()},
        "key": entry.get("key"),
        "dependencies": [dependency_from_dict(d, path="{}.dependencies[{}]".format(path, i))
                         for i, d in enumerate(raw_dependencies)],
        "indexes": entry.get("indexes"),
    }


# -- whole databases -----------------------------------------------------------------------------------


def database_to_dict(database: Database, include_data: bool = True) -> dict:
    """Convert a database (catalog and, optionally, the stored tuples) to a dictionary.

    Fresh planner statistics ride along with the data (they describe exactly the
    serialized tuples); without data, or when stale, they are omitted.
    """
    tables = []
    for name in database.tables():
        definition = database.catalog.definition(name)
        entry = table_definition_to_dict(definition)
        if include_data:
            entry["tuples"] = sorted(
                (t.as_dict() for t in database.table(name).tuples),
                key=lambda item: sorted(item.items(), key=lambda pair: (pair[0], repr(pair[1]))),
            )
            statistics = database.statistics.get(name)
            if statistics is not None:
                entry["statistics"] = statistics.to_dict()
        tables.append(entry)
    return {"format_version": FORMAT_VERSION, "tables": tables}


def populate_database_from_dict(database: Database, data: dict) -> Database:
    """Load a :func:`database_to_dict` document into an existing database.

    The database is expected to be empty (a fresh construction or a durable
    database in recovery); tables are created and filled in document order.
    Structural problems raise :class:`SerializationError` naming the offending
    path; constraint violations of the *data* propagate unchanged (they name
    the violated constraint, which is more useful than a document path).
    """
    _as_object(data, "")
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            "unsupported format_version {!r} (this build reads version {})".format(
                version, FORMAT_VERSION))
    raw_tables = data.get("tables", [])
    if not isinstance(raw_tables, list):
        raise _fail("tables", "expected a list of tables")
    for index, entry in enumerate(raw_tables):
        path = "tables[{}]".format(index)
        spec = table_definition_from_dict(entry, path=path)
        try:
            table = database.create_table(
                spec["name"], spec["scheme"], domains=spec["domains"],
                key=spec["key"], dependencies=spec["dependencies"],
                indexes=spec["indexes"],
            )
        except (TypeError, ValueError) as exc:
            raise _fail(path, "invalid table definition: {}".format(exc)) from exc
        raw_tuples = entry.get("tuples", [])
        if not isinstance(raw_tuples, list):
            raise _fail(path + ".tuples", "expected a list of tuples")
        for tuple_index, values in enumerate(raw_tuples):
            if not isinstance(values, dict):
                raise _fail("{}.tuples[{}]".format(path, tuple_index),
                            "expected an object of attribute values")
            table.insert(values)
        statistics = entry.get("statistics")
        if statistics is not None:
            try:
                restored = TableStatistics.from_dict(statistics)
            except (KeyError, TypeError, ValueError) as exc:
                raise _fail(path + ".statistics",
                            "malformed statistics: {}".format(exc)) from exc
            # The statistics describe exactly the tuples just loaded: restore
            # them as fresh so the planner can use them without a re-ANALYZE.
            database.statistics.restore(spec["name"], restored)
    return database


def database_from_dict(data: dict, enforce_constraints: bool = True) -> Database:
    """Rebuild a database from :func:`database_to_dict` output."""
    database = Database(enforce_constraints=enforce_constraints)
    return populate_database_from_dict(database, data)


def dump_database(database: Database, file, include_data: bool = True, indent: int = 2) -> None:
    """Write a database to a file path or an open text file.

    Given a path (``str`` / ``os.PathLike``) the write is atomic: the document
    lands in a temp file first and is renamed over the target only once it is
    complete and fsynced, so a crash mid-dump never leaves a half-written
    snapshot where a reader expects a valid one.
    """
    payload = database_to_dict(database, include_data=include_data)
    if isinstance(file, (str, os.PathLike)):
        atomic_write_json(os.fspath(file), payload, indent=indent)
        return
    json.dump(payload, file, indent=indent, sort_keys=True)


def dumps_database(database: Database, include_data: bool = True) -> str:
    """Return the JSON document for a database as a string."""
    return json.dumps(database_to_dict(database, include_data=include_data), sort_keys=True)


def load_database(file, enforce_constraints: bool = True) -> Database:
    """Read a database from a file path or an open text file."""
    if isinstance(file, (str, os.PathLike)):
        data = load_json_file(os.fspath(file))
    else:
        try:
            data = json.load(file)
        except json.JSONDecodeError as exc:
            raise SerializationError("not valid JSON ({})".format(exc)) from exc
    return database_from_dict(data, enforce_constraints=enforce_constraints)


def loads_database(text: str, enforce_constraints: bool = True) -> Database:
    """Read a database from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError("not valid JSON ({})".format(exc)) from exc
    return database_from_dict(data, enforce_constraints=enforce_constraints)
