"""Cancellation chaos harness, sibling of ``storage.faults.crash_at_every_offset``.

``cancel_at_every_boundary`` runs each corpus expression once with a counting
token to learn how many operator boundaries the plan passes, then replays it
with the chaos hook arming every boundary in turn.  Each injection must:

* raise ``QueryCancelled`` (the boundary really cancels),
* leave no open WAL transaction and an unchanged feedback-store version,
* leave no spill temp files behind (when a spill directory is configured),
* count exactly one ``queries.cancelled`` and zero ``queries.executed``,

and after the sweep a clean re-execution must reproduce the baseline result
set exactly — the "recovery replays to the same state" assertion of the
crash harness, transplanted to the execution path.
"""

import os
from typing import Dict, Iterable, Optional, Sequence

from repro.errors import GovernorError, QueryCancelled
from repro.governor.cancel import CancelToken

__all__ = ["ChaosError", "cancel_at_every_boundary"]


class ChaosError(GovernorError):
    """An invariant the cancellation sweep guarantees was violated."""


def _counter(database, name: str) -> int:
    snapshot = database.metrics_registry.counter(name)
    return snapshot.value


def cancel_at_every_boundary(database, expressions: Sequence,
                             mode: Optional[str] = None,
                             batch_size: Optional[int] = None,
                             stride: int = 1,
                             spill_root: Optional[str] = None) -> Dict[str, int]:
    """Sweep cancellation across every operator boundary of every expression.

    Returns a summary dict (expressions swept, boundaries injected) so test
    output shows the coverage; raises :class:`ChaosError` on the first
    violated invariant.  ``stride`` thins the sweep for large corpora the
    way the crash harness's ``stride`` does.  ``spill_root`` is the
    database's configured spill directory, asserted empty after every
    injection.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    summary = {"expressions": 0, "boundaries": 0, "injections": 0}
    for expression in expressions:
        baseline_token = CancelToken()
        baseline = database.execute(expression, mode=mode,
                                    batch_size=batch_size,
                                    cancel_token=baseline_token)
        expected = set(baseline.tuples)
        boundaries = baseline_token.checks
        if boundaries == 0:
            raise ChaosError(
                "no cancellation boundaries observed for {!r} — the governed "
                "stream wrapper is not installed".format(expression))
        for boundary in range(0, boundaries, stride):
            feedback_version = database.cardinality_feedback.version
            executed_before = _counter(database, "queries.executed")
            cancelled_before = _counter(database, "queries.cancelled")
            token = CancelToken(fire_after_checks=boundary)
            try:
                database.execute(expression, mode=mode,
                                 batch_size=batch_size, cancel_token=token)
            except QueryCancelled:
                pass
            else:
                raise ChaosError(
                    "boundary {} of {!r} did not cancel".format(
                        boundary, expression))
            if database.durability is not None and database.durability.in_transaction:
                raise ChaosError(
                    "boundary {} of {!r} leaked an open WAL transaction".format(
                        boundary, expression))
            if database.cardinality_feedback.version != feedback_version:
                raise ChaosError(
                    "boundary {} of {!r} mutated the feedback store".format(
                        boundary, expression))
            if _counter(database, "queries.executed") != executed_before:
                raise ChaosError(
                    "boundary {} of {!r} counted a cancelled query as "
                    "executed".format(boundary, expression))
            if _counter(database, "queries.cancelled") != cancelled_before + 1:
                raise ChaosError(
                    "boundary {} of {!r} did not count exactly one "
                    "cancellation".format(boundary, expression))
            if spill_root is not None and os.path.isdir(spill_root) \
                    and os.listdir(spill_root):
                raise ChaosError(
                    "boundary {} of {!r} leaked spill files: {}".format(
                        boundary, expression, os.listdir(spill_root)))
            summary["injections"] += 1
        rerun = database.execute(expression, mode=mode, batch_size=batch_size)
        if set(rerun.tuples) != expected:
            raise ChaosError(
                "re-execution of {!r} after the cancellation sweep diverged "
                "from the baseline".format(expression))
        summary["expressions"] += 1
        summary["boundaries"] += boundaries
    return summary
