"""Resource governor: deadlines, cooperative cancellation, memory budgets
with spill-to-disk, and an admission-control front door.

The execution engine is single-threaded and cooperative, so control has to
be woven into the operators rather than imposed from outside:

* :class:`~repro.governor.cancel.CancelToken` (optionally carrying a
  :class:`~repro.governor.cancel.Deadline`) is checked at every operator
  boundary — each ``run()`` stream checks before the first batch and before
  yielding every subsequent one — and unwinds via the
  ``QueryCancelled``/``QueryTimeout`` taxonomy in :mod:`repro.errors`.
* :class:`~repro.governor.governor.QueryGovernor` bundles the token with a
  per-query memory budget.  Budgets are enforced through the same sampled
  ``peak_bytes`` accounting observability already records: the hash-join
  build, hash aggregation and sort spill to CRC-framed temp segments
  (:mod:`repro.governor.spill`) and keep going; every other stateful
  operator fails fast with ``MemoryBudgetExceeded``.
* :class:`~repro.governor.admission.AdmissionController` is the front door:
  a concurrency cap with a bounded wait queue, per-class timeouts, a
  trip-after-N-failures circuit breaker, and a jittered
  :class:`~repro.governor.admission.RetryPolicy` for callers.
* :func:`~repro.governor.chaos.cancel_at_every_boundary` is the proof
  harness, in the style of ``storage.faults.crash_at_every_offset``:
  cancellation injected at every boundary must leak nothing and leave
  re-execution bit-identical.
"""

from repro.governor.admission import (
    AdmissionController,
    AdmissionTicket,
    CircuitBreaker,
    RetryPolicy,
)
from repro.governor.cancel import CancelToken, Deadline
from repro.governor.chaos import ChaosError, cancel_at_every_boundary
from repro.governor.governor import QueryGovernor
from repro.governor.spill import (
    ExternalSorter,
    GracePartitioner,
    SpillManager,
    SpillSegment,
    SpillingAggregator,
)

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "CancelToken",
    "ChaosError",
    "CircuitBreaker",
    "Deadline",
    "ExternalSorter",
    "GracePartitioner",
    "QueryGovernor",
    "RetryPolicy",
    "SpillManager",
    "SpillSegment",
    "SpillingAggregator",
    "cancel_at_every_boundary",
]
