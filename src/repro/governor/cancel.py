"""Cooperative cancellation: tokens, deadlines, and the chaos hook.

A :class:`CancelToken` is the one object shared between the caller (who may
cancel from another thread) and the executing plan (which calls
:meth:`CancelToken.check` at every operator boundary).  ``check()`` is the
single choke point, which makes two things cheap: deadlines (the token
carries a :class:`Deadline` and raises ``QueryTimeout`` once it expires) and
chaos injection (``fire_after_checks=n`` turns the *n*-th boundary into a
cancellation, which is how ``chaos.cancel_at_every_boundary`` sweeps every
boundary of a plan deterministically).
"""

import time
from typing import Callable, Optional

from repro.errors import QueryCancelled, QueryTimeout

__all__ = ["CancelToken", "Deadline"]


class Deadline:
    """A monotonic-clock deadline: ``seconds`` from construction time.

    The clock is injectable so tests (and the admission controller's
    per-class timeouts) can use a fake clock instead of sleeping.
    """

    __slots__ = ("seconds", "_clock", "_expires_at")

    def __init__(self, seconds: float,
                 clock: Callable[[], float] = time.monotonic):
        self.seconds = float(seconds)
        self._clock = clock
        self._expires_at = clock() + self.seconds

    def remaining(self) -> float:
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def __repr__(self) -> str:
        return "Deadline({}s, {:.3f}s remaining)".format(
            self.seconds, self.remaining())


class CancelToken:
    """Cooperative cancellation flag checked at every operator boundary.

    ``cancel()`` may be called from any thread; the executing thread observes
    it at its next :meth:`check`.  ``checks`` counts how many boundaries a
    query passed — the chaos harness runs a query once to learn the count,
    then replays it with ``fire_after_checks`` sweeping ``0..checks-1``.
    """

    __slots__ = ("checks", "deadline", "fire_after_checks", "_reason")

    def __init__(self, deadline: Optional[Deadline] = None,
                 fire_after_checks: Optional[int] = None):
        self.checks = 0
        self.deadline = deadline
        #: chaos hook: boundary index (0-based) at which to self-cancel
        self.fire_after_checks = fire_after_checks
        self._reason: Optional[str] = None

    @property
    def cancelled(self) -> bool:
        return self._reason is not None

    def cancel(self, reason: str = "query cancelled") -> None:
        """Request cancellation; the query unwinds at its next boundary."""
        if self._reason is None:
            self._reason = reason

    def check(self) -> None:
        """Count the boundary; raise if cancelled or past the deadline."""
        self.checks += 1
        fire_after = self.fire_after_checks
        if fire_after is not None and self.checks > fire_after:
            self.cancel("chaos: cancelled at boundary {}".format(fire_after))
        if self._reason is not None:
            raise QueryCancelled(self._reason)
        deadline = self.deadline
        if deadline is not None and deadline.expired():
            raise QueryTimeout(
                "query exceeded its {:.3f}s deadline".format(deadline.seconds),
                timeout=deadline.seconds)

    def __repr__(self) -> str:
        state = self._reason or (
            "deadline {!r}".format(self.deadline) if self.deadline else "live")
        return "CancelToken({} checks, {})".format(self.checks, state)
