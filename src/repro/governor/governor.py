"""The per-query governor: one object bundling deadline, cancellation and
memory budget, threaded through ``ExecutionContext`` into every operator.

Lifecycle: ``Database`` builds one ``QueryGovernor`` per governed execution,
passes it to ``PhysicalPlan.execute``, and calls :meth:`QueryGovernor.finish`
in a ``finally`` — which is what guarantees spill temp files never outlive
the query, whether it completed, timed out, was cancelled, or failed.
"""

import time
from typing import Callable, Optional

from repro.errors import MemoryBudgetExceeded
from repro.governor.cancel import CancelToken, Deadline
from repro.governor.spill import SpillManager

__all__ = ["QueryGovernor"]


class QueryGovernor:
    """Deadline + cancellation + memory budget for one query execution.

    * ``check()`` is called by every operator stream at every boundary; it
      delegates to the :class:`CancelToken` (which also enforces the
      deadline).
    * ``enforce(label, size)`` is called wherever operators already record
      ``peak_bytes``; over budget it raises ``MemoryBudgetExceeded`` — the
      spill-capable operators never call it for their spillable state,
      they consult ``spill_budget`` instead and spill.
    * ``spill_manager()`` lazily owns the query's temp segments;
      ``finish()`` removes them.
    """

    def __init__(self, cancel_token: Optional[CancelToken] = None,
                 timeout: Optional[float] = None,
                 memory_budget: Optional[int] = None,
                 spill: bool = True,
                 spill_directory: Optional[str] = None,
                 registry=None,
                 clock: Callable[[], float] = time.monotonic):
        self.token = cancel_token if cancel_token is not None else CancelToken()
        if timeout is not None and self.token.deadline is None:
            self.token.deadline = Deadline(timeout, clock=clock)
        self.timeout = timeout
        self.memory_budget = None if memory_budget is None else int(memory_budget)
        self.spill_enabled = bool(spill)
        self.spill_directory = spill_directory
        self.registry = registry
        self._spill_manager: Optional[SpillManager] = None

    def check(self) -> None:
        """One operator-boundary checkpoint; raises to unwind the query."""
        self.token.check()

    @property
    def spill_budget(self) -> Optional[int]:
        """The budget when spilling is allowed, else None (= fail fast)."""
        if self.memory_budget is not None and self.spill_enabled:
            return self.memory_budget
        return None

    def enforce(self, label: str, size: int) -> None:
        """Fail fast if ``size`` bytes of held state exceed the budget."""
        budget = self.memory_budget
        if budget is not None and size > budget:
            raise MemoryBudgetExceeded(label, size, budget)

    def spill_manager(self) -> SpillManager:
        if self._spill_manager is None:
            self._spill_manager = SpillManager(
                self.spill_directory, registry=self.registry)
        return self._spill_manager

    @property
    def spilled(self) -> bool:
        return self._spill_manager is not None and self._spill_manager.spilled

    def finish(self) -> None:
        """Release every resource the query held (idempotent); always runs,
        so aborted queries leak no spill files."""
        if self._spill_manager is not None:
            self._spill_manager.cleanup()
            self._spill_manager = None

    def __repr__(self) -> str:
        parts = []
        if self.timeout is not None:
            parts.append("timeout={}s".format(self.timeout))
        if self.memory_budget is not None:
            parts.append("budget={}B spill={}".format(
                self.memory_budget, "on" if self.spill_enabled else "off"))
        return "QueryGovernor({})".format(", ".join(parts) or "cancel-only")
