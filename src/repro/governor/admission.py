"""Admission control: the front door that sheds load instead of compounding.

Three cooperating pieces, all clock- and sleep-injectable for deterministic
tests:

* :class:`AdmissionController` — a concurrency cap with a bounded wait
  queue.  ``admit()`` either grants a ticket immediately, waits (bounded)
  for a slot, or raises ``AdmissionRejected`` when the queue is full / the
  wait times out; ``complete()`` releases the slot and feeds the breaker.
  Per-class timeouts let interactive traffic run under tighter deadlines
  than batch traffic without every call site passing one.
* :class:`CircuitBreaker` — trips open after N *consecutive* failures,
  half-opens after a cooldown to probe with one query, and closes again on
  success.  Client-initiated cancellations are not failures.
* :class:`RetryPolicy` — exponential backoff with jitter for callers that
  want transient rejections (shed, timeout) retried.
"""

import random
import threading
import time
from typing import Callable, Dict, Optional, Tuple, Type

from repro.errors import AdmissionRejected, CircuitOpen, QueryTimeout

__all__ = ["AdmissionController", "AdmissionTicket", "CircuitBreaker",
           "RetryPolicy"]


class AdmissionTicket:
    """Proof of admission; hand it back to ``complete()`` exactly once."""

    __slots__ = ("query_class", "released")

    def __init__(self, query_class: str):
        self.query_class = query_class
        self.released = False


class CircuitBreaker:
    """Trip-open after ``failure_threshold`` consecutive failures.

    States: ``closed`` (all traffic), ``open`` (everything rejected until
    ``reset_timeout`` elapses), ``half-open`` (one probe allowed; success
    closes the circuit, failure re-opens it).
    """

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self.state = "closed"
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_at: Optional[float] = None

    def allow(self) -> bool:
        with self._lock:
            if self.state == "open":
                if self._clock() - self._opened_at >= self.reset_timeout:
                    self.state = "half-open"
                    return True
                return False
            return True

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            self.state = "closed"
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            if (self.state == "half-open"
                    or self.consecutive_failures >= self.failure_threshold):
                self.state = "open"
                self._opened_at = self._clock()
                self.trips += 1
                self.consecutive_failures = 0

    def as_dict(self) -> Dict[str, object]:
        return {"state": self.state, "trips": self.trips,
                "consecutive_failures": self.consecutive_failures,
                "failure_threshold": self.failure_threshold}


class AdmissionController:
    """Bounded front door for query execution.

    ``max_concurrent`` slots run at once; up to ``queue_limit`` callers wait
    at most ``queue_timeout`` seconds for a slot.  Everything beyond that is
    shed with ``AdmissionRejected`` immediately — a full queue means the
    system is already saturated and more waiting only compounds the backlog.
    """

    def __init__(self, max_concurrent: int = 4, queue_limit: int = 16,
                 queue_timeout: float = 5.0,
                 class_timeouts: Optional[Dict[str, float]] = None,
                 failure_threshold: int = 5, breaker_reset: float = 30.0,
                 registry=None,
                 clock: Callable[[], float] = time.monotonic):
        if max_concurrent < 0:
            raise ValueError("max_concurrent must be >= 0")
        self.max_concurrent = int(max_concurrent)
        self.queue_limit = int(queue_limit)
        self.queue_timeout = float(queue_timeout)
        #: per-class default query timeouts (e.g. interactive vs batch)
        self.class_timeouts = dict(class_timeouts or {})
        self.registry = registry
        self._clock = clock
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self.active = 0
        self.queued = 0
        self.admitted_total = 0
        self.shed_total = 0
        self.breaker = CircuitBreaker(failure_threshold, breaker_reset,
                                      clock=clock)

    def _count(self, name: str) -> None:
        if self.registry is not None:
            self.registry.counter(name).add()

    def timeout_for(self, query_class: str) -> Optional[float]:
        """The default deadline for a class (None = no class deadline)."""
        return self.class_timeouts.get(query_class)

    def admit(self, query_class: str = "default") -> AdmissionTicket:
        if not self.breaker.allow():
            self.shed_total += 1
            self._count("admission.shed")
            raise CircuitOpen(
                "circuit breaker open (tripped {} time(s)); retry after "
                "{}s".format(self.breaker.trips, self.breaker.reset_timeout))
        with self._slot_freed:
            if self.active < self.max_concurrent:
                self.active += 1
                self.admitted_total += 1
                self._count("admission.admitted")
                return AdmissionTicket(query_class)
            if self.queued >= self.queue_limit:
                self.shed_total += 1
                self._count("admission.shed")
                raise AdmissionRejected(
                    "admission queue full ({} waiting, {} running)".format(
                        self.queued, self.active))
            self.queued += 1
            self._count("admission.queued")
            deadline = self._clock() + self.queue_timeout
            try:
                while self.active >= self.max_concurrent:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        self.shed_total += 1
                        self._count("admission.shed")
                        raise AdmissionRejected(
                            "timed out after {}s waiting for an execution "
                            "slot".format(self.queue_timeout))
                    self._slot_freed.wait(remaining)
                self.active += 1
                self.admitted_total += 1
                self._count("admission.admitted")
                return AdmissionTicket(query_class)
            finally:
                self.queued -= 1

    def complete(self, ticket: AdmissionTicket, success: bool = True) -> None:
        """Release the ticket's slot and feed the breaker."""
        if ticket.released:
            return
        ticket.released = True
        with self._slot_freed:
            self.active -= 1
            self._slot_freed.notify()
        if success:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()

    def as_dict(self) -> Dict[str, object]:
        return {
            "active": self.active,
            "queued": self.queued,
            "max_concurrent": self.max_concurrent,
            "queue_limit": self.queue_limit,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
            "breaker": self.breaker.as_dict(),
        }


class RetryPolicy:
    """Exponential backoff with jitter around a retryable callable.

    ``run(fn)`` invokes ``fn`` up to ``max_attempts`` times, sleeping
    ``base_delay * multiplier**attempt * (1 + jitter * U[0,1))`` between
    retryable failures and re-raising the last error once attempts are
    exhausted.  ``sleep`` and ``rng`` are injectable so tests never wait.
    """

    def __init__(self, max_attempts: int = 3, base_delay: float = 0.05,
                 multiplier: float = 2.0, jitter: float = 0.5,
                 retry_on: Tuple[Type[BaseException], ...] = (
                     AdmissionRejected, QueryTimeout),
                 sleep: Callable[[float], None] = time.sleep,
                 rng: Optional[random.Random] = None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.retry_on = retry_on
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self.attempts = 0
        self.delays = []

    def delay(self, attempt: int) -> float:
        backoff = self.base_delay * (self.multiplier ** attempt)
        return backoff * (1.0 + self.jitter * self._rng.random())

    def run(self, fn: Callable):
        self.attempts = 0
        del self.delays[:]
        while True:
            self.attempts += 1
            try:
                return fn()
            except self.retry_on:
                if self.attempts >= self.max_attempts:
                    raise
                pause = self.delay(self.attempts - 1)
                self.delays.append(pause)
                self._sleep(pause)
