"""Spill-to-disk machinery: CRC-framed temp segments plus the three
budget-respecting algorithms built on them.

Segments reuse the WAL's framing discipline (``storage/wal.py``): a magic
header, then ``<length, crc32>``-framed pickled chunks, verified on read —
a torn or corrupted spill file raises ``SpillError`` instead of silently
feeding a query wrong data.  Everything spilled is plain picklable data
(value dicts, group keys, accumulator state lists); ``FlexTuple``\\ s are
decomposed into ``(values, hash)`` pairs before writing and rebuilt with
``FlexTuple.from_parts`` on the way back.

Three consumers, mirroring the classic algorithms:

* :class:`ExternalSorter` — sorted in-memory runs flushed when the budget
  trips, ``heapq.merge``-d on read (external merge sort).
* :class:`SpillingAggregator` — hash aggregation that hash-partitions its
  ``group → state`` dict to disk when over budget and merges per partition
  at finalize time via ``AggregateAccumulator.merge_states``
  (partition-and-merge; peak memory ≈ budget + one partition).
* :class:`GracePartitioner` — the shared partition writer the grace hash
  join uses for both its build and probe sides.
"""

import heapq
import os
import pickle
import shutil
import tempfile
import zlib
from typing import Callable, Iterator, List, Optional, Sequence

from repro.algebra.analytic import AggregateAccumulator, group_key, group_values
from repro.errors import SpillError
from repro.exec.context import sampled_size
from repro.storage.wal import FRAME_HEADER, MAX_FRAME_BYTES

__all__ = [
    "ExternalSorter",
    "GracePartitioner",
    "SpillManager",
    "SpillSegment",
    "SpillingAggregator",
]

#: magic header of every spill segment (framing sibling of the WAL's RPRWAL01)
SPILL_MAGIC = b"RPRSPL01"

#: records buffered per pickled frame — bounds both frame size and the
#: per-chunk memory a reader holds
CHUNK_RECORDS = 512

#: fan-out of the partition-and-merge paths (aggregate and grace join)
SPILL_PARTITIONS = 16


class SpillSegment:
    """One CRC-framed temp file of pickled record chunks.

    Write-once (``append``/``extend`` then ``finish``), then iterable any
    number of times; iteration holds one chunk in memory at a time.
    """

    __slots__ = ("path", "records", "bytes", "_file", "_buffer", "_manager")

    def __init__(self, path: str, manager: "SpillManager | None" = None):
        self.path = path
        self.records = 0
        self.bytes = len(SPILL_MAGIC)
        self._file = open(path, "wb")
        self._file.write(SPILL_MAGIC)
        self._buffer: List[object] = []
        self._manager = manager

    def append(self, record) -> None:
        self._buffer.append(record)
        if len(self._buffer) >= CHUNK_RECORDS:
            self._flush_chunk()

    def extend(self, records) -> None:
        for record in records:
            self.append(record)

    def _flush_chunk(self) -> None:
        payload = pickle.dumps(self._buffer, protocol=pickle.HIGHEST_PROTOCOL)
        frame = FRAME_HEADER.pack(len(payload), zlib.crc32(payload))
        self._file.write(frame)
        self._file.write(payload)
        self.records += len(self._buffer)
        self.bytes += len(frame) + len(payload)
        del self._buffer[:]

    def finish(self) -> None:
        """Flush the tail chunk and close the file for writing."""
        if self._file is None:
            return
        if self._buffer:
            self._flush_chunk()
        self._file.close()
        self._file = None
        if self._manager is not None:
            self._manager._count("spill.records", self.records)
            self._manager._count("spill.bytes", self.bytes)

    def discard(self) -> None:
        """Close (if still writing) and delete the backing file."""
        if self._file is not None:
            self._file.close()
            self._file = None
        try:
            os.remove(self.path)
        except OSError:
            pass

    def __iter__(self) -> Iterator:
        if self._file is not None:
            raise SpillError(
                "spill segment {!r} read before finish()".format(self.path))
        with open(self.path, "rb") as handle:
            magic = handle.read(len(SPILL_MAGIC))
            if magic != SPILL_MAGIC:
                raise SpillError(
                    "spill segment {!r} has a bad magic header".format(self.path))
            while True:
                header = handle.read(FRAME_HEADER.size)
                if not header:
                    return
                if len(header) < FRAME_HEADER.size:
                    raise SpillError(
                        "torn frame header in spill segment {!r}".format(self.path))
                length, crc = FRAME_HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise SpillError(
                        "oversized frame ({} bytes) in spill segment {!r}".format(
                            length, self.path))
                payload = handle.read(length)
                if len(payload) < length:
                    raise SpillError(
                        "torn frame payload in spill segment {!r}".format(self.path))
                if zlib.crc32(payload) != crc:
                    raise SpillError(
                        "CRC mismatch in spill segment {!r}".format(self.path))
                for record in pickle.loads(payload):
                    yield record


class SpillManager:
    """Owns one query's spill directory: segment creation, counters, cleanup.

    The directory is created lazily under ``base_directory`` (or the system
    temp dir) on the first spill, so budgeted queries that never spill touch
    no disk.  ``cleanup()`` removes everything — the governor calls it in a
    ``finally`` so cancelled and failed queries leak no temp files either.
    """

    def __init__(self, base_directory: Optional[str] = None, registry=None):
        self.base_directory = base_directory
        self.registry = registry
        self.directory: Optional[str] = None
        self.segments: List[SpillSegment] = []
        #: operator-level spill events (one flush of in-memory state to disk)
        self.spill_events = 0

    def _count(self, name: str, amount: int = 1) -> None:
        if self.registry is not None:
            self.registry.counter(name).add(amount)

    def create_segment(self, label: str) -> SpillSegment:
        if self.directory is None:
            self.directory = tempfile.mkdtemp(
                prefix="repro-spill-", dir=self.base_directory)
        path = os.path.join(
            self.directory, "{:04d}-{}.seg".format(len(self.segments), label))
        segment = SpillSegment(path, manager=self)
        self.segments.append(segment)
        self._count("spill.segments")
        return segment

    def note_spill(self) -> None:
        """Account one operator-level flush of state to disk.  Records and
        bytes are counted per segment when it finishes."""
        self.spill_events += 1
        self._count("spill.events")

    @property
    def spilled(self) -> bool:
        return self.spill_events > 0

    def cleanup(self) -> None:
        for segment in self.segments:
            segment.discard()
        del self.segments[:]
        if self.directory is not None:
            shutil.rmtree(self.directory, ignore_errors=True)
            self.directory = None


class ExternalSorter:
    """External merge sort under a byte budget.

    ``extend`` items (any picklable records), call ``maybe_spill`` at batch
    boundaries; when the sampled size of the held run crosses the budget the
    run is sorted and flushed as one segment.  ``merged()`` then k-way merges
    the on-disk runs with the in-memory remainder — each run is already
    sorted, so ``heapq.merge`` streams the global order holding one chunk per
    run.  The sort key must be a total order (the engine's ``row_order_key``
    includes a canonical whole-tuple tie-break), which makes the merged
    output deterministic regardless of how many runs the budget produced.
    """

    def __init__(self, manager: SpillManager, key: Callable,
                 budget: int, note: Callable[[int], None],
                 label: str = "sort"):
        self._manager = manager
        self._key = key
        self._budget = budget
        self._note = note  # feeds the operator's peak_bytes accounting
        self._label = label
        self._items: List[object] = []
        self._runs: List[SpillSegment] = []
        self._since_check = 0

    @property
    def runs(self) -> int:
        return len(self._runs)

    def extend(self, items) -> None:
        held = self._items
        append = held.append
        for item in items:
            append(item)
            self._since_check += 1
            # Batch sizes are adaptive and can reach the whole input, so the
            # budget is re-checked every CHUNK_RECORDS items regardless of
            # how the caller batches — held state stays near the budget.
            if self._since_check >= CHUNK_RECORDS:
                self.maybe_spill()
                held = self._items
                append = held.append

    def maybe_spill(self) -> None:
        self._since_check = 0
        size = sampled_size(self._items)
        self._note(size)
        if size > self._budget and self._items:
            self._spill_run()

    def _spill_run(self) -> None:
        self._items.sort(key=self._key)
        segment = self._manager.create_segment(self._label)
        segment.extend(self._items)
        segment.finish()
        self._runs.append(segment)
        self._manager.note_spill()
        self._items = []

    def merged(self) -> Iterator:
        self._items.sort(key=self._key)
        if not self._runs:
            return iter(self._items)
        streams = [iter(run) for run in self._runs]
        streams.append(iter(self._items))
        return heapq.merge(*streams, key=self._key)


class SpillingAggregator:
    """Hash aggregation with partition-and-merge spilling.

    Feed value dicts through ``add`` and call ``maybe_spill`` at batch
    boundaries.  While under budget this is exactly the in-memory hash
    aggregate (one ``group key → accumulator states`` dict).  The first time
    the budget trips, ``SPILL_PARTITIONS`` segments are opened and the dict
    is flushed as ``(key, states)`` pairs routed by ``hash(key)``; the dict
    then refills and flushes again as needed.  ``results()`` finalizes
    partition by partition: same-key state pairs from different flushes are
    combined with ``AggregateAccumulator.merge_states``, so peak memory is
    one partition's merged groups (~1/16 of the total) plus the budget-bound
    live dict.
    """

    def __init__(self, manager: SpillManager,
                 accumulator: AggregateAccumulator,
                 group_names: Sequence[str], budget: int,
                 note: Callable[[int], None],
                 partitions: int = SPILL_PARTITIONS):
        self._manager = manager
        self._accumulator = accumulator
        self._names = tuple(group_names)
        self._budget = budget
        self._note = note
        self._partitions_count = partitions
        self._groups = {}
        self._partitions: Optional[List[SpillSegment]] = None
        self._since_check = 0

    @property
    def spilled(self) -> bool:
        return self._partitions is not None

    def add(self, values) -> None:
        key = group_key(values, self._names)
        states = self._groups.get(key)
        if states is None:
            states = self._groups[key] = self._accumulator.new_state()
        self._accumulator.update(states, values)
        self._since_check += 1
        # re-check every CHUNK_RECORDS rows so a whole-input batch cannot
        # grow the group dict far past the budget between caller checks
        if self._since_check >= CHUNK_RECORDS:
            self.maybe_spill()

    def maybe_spill(self) -> None:
        self._since_check = 0
        size = sampled_size(self._groups)
        self._note(size)
        if size > self._budget and self._groups:
            self._flush()

    def _flush(self) -> None:
        if self._partitions is None:
            self._partitions = [
                self._manager.create_segment("agg-p{:02d}".format(index))
                for index in range(self._partitions_count)]
        modulus = self._partitions_count
        for key, states in self._groups.items():
            self._partitions[hash(key) % modulus].append((key, states))
        self._manager.note_spill()
        self._groups = {}

    def results(self) -> Iterator:
        """Yield each group's output value dict (non-empty ones only)."""
        accumulator, names = self._accumulator, self._names
        if self._partitions is None:
            groups = self._groups
            if not groups and not names:
                out = accumulator.empty_result()
                if out:
                    yield out
                return
            for key, states in groups.items():
                out = group_values(key, names)
                out.update(accumulator.finalize(states))
                if out:
                    yield out
            return
        if self._groups:
            self._flush()  # push the live remainder so partitions are complete
        for segment in self._partitions:
            segment.finish()
        for segment in self._partitions:
            merged = {}
            for key, states in segment:
                held = merged.get(key)
                if held is None:
                    merged[key] = states
                else:
                    accumulator.merge_states(held, states)
            if merged:
                self._note(sampled_size(merged))
            for key, states in merged.items():
                out = group_values(key, names)
                out.update(accumulator.finalize(states))
                if out:
                    yield out


class GracePartitioner:
    """Hash-partitioned ``(key, payload)`` writer for the grace hash join.

    Both join sides are routed by ``hash(key) % partitions`` so matching keys
    meet in the same partition; merged output tuples carry the join key, so
    per-partition duplicate elimination is globally correct.
    """

    def __init__(self, manager: SpillManager, label: str,
                 partitions: int = SPILL_PARTITIONS):
        self.partitions = partitions
        self._segments = [
            manager.create_segment("{}-p{:02d}".format(label, index))
            for index in range(partitions)]
        self._manager = manager
        self._records = 0

    def add(self, key, payload) -> None:
        self._segments[hash(key) % self.partitions].append((key, payload))
        self._records += 1

    def finish(self) -> None:
        for segment in self._segments:
            segment.finish()
        self._manager.note_spill()

    def segment(self, index: int) -> SpillSegment:
        return self._segments[index]
