"""Tokenizer for the textual query language."""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

from repro.errors import ReproError


class QuerySyntaxError(ReproError):
    """Raised for malformed query text (lexical or grammatical)."""


class Token(NamedTuple):
    """A single token: its kind, its value, and where it starts (for error messages)."""

    kind: str
    value: object
    position: int

    def describe(self) -> str:
        return "{}({!r}) at position {}".format(self.kind, self.value, self.position)


#: keywords are case-insensitive; they are emitted as their upper-case spelling
KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GUARD", "TAG", "UNION", "OUTER", "EXCEPT",
    "JOIN", "NATURAL", "ON", "AND", "OR", "NOT", "HAS", "IN", "TRUE", "FALSE", "NULL",
}

#: multi-character operators must be matched before their one-character prefixes
OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">")

PUNCTUATION = {",": "COMMA", "(": "LPAREN", ")": "RPAREN", "*": "STAR"}


def tokenize(text: str) -> List[Token]:
    """Turn query text into a list of tokens (ending with an ``EOF`` token)."""
    tokens: List[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "-" and text[index:index + 2] == "--":
            # line comment
            end = text.find("\n", index)
            index = length if end == -1 else end + 1
            continue
        if char in PUNCTUATION:
            tokens.append(Token(PUNCTUATION[char], char, index))
            index += 1
            continue
        operator = _match_operator(text, index)
        if operator is not None:
            tokens.append(Token("OP", operator, index))
            index += len(operator)
            continue
        if char == "'":
            value, index = _read_string(text, index)
            tokens.append(Token("STRING", value, index))
            continue
        if char.isdigit() or (char in "+-" and index + 1 < length and text[index + 1].isdigit()):
            value, new_index = _read_number(text, index)
            tokens.append(Token("NUMBER", value, index))
            index = new_index
            continue
        if char.isalpha() or char == "_":
            value, new_index = _read_name(text, index)
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token(upper, upper, index))
            else:
                tokens.append(Token("NAME", value, index))
            index = new_index
            continue
        raise QuerySyntaxError("unexpected character {!r} at position {}".format(char, index))
    tokens.append(Token("EOF", None, length))
    return tokens


def _match_operator(text: str, index: int) -> Optional[str]:
    for operator in OPERATORS:
        if text.startswith(operator, index):
            return operator
    return None


def _read_string(text: str, index: int):
    """Read a single-quoted string literal; ``''`` inside is an escaped quote."""
    assert text[index] == "'"
    index += 1
    pieces = []
    while True:
        if index >= len(text):
            raise QuerySyntaxError("unterminated string literal")
        char = text[index]
        if char == "'":
            if text[index + 1:index + 2] == "'":
                pieces.append("'")
                index += 2
                continue
            return "".join(pieces), index + 1
        pieces.append(char)
        index += 1


def _read_number(text: str, index: int):
    start = index
    if text[index] in "+-":
        index += 1
    seen_dot = False
    while index < len(text) and (text[index].isdigit() or (text[index] == "." and not seen_dot)):
        if text[index] == ".":
            seen_dot = True
        index += 1
    raw = text[start:index]
    if raw in ("+", "-") or raw.endswith("."):
        raise QuerySyntaxError("malformed number {!r} at position {}".format(raw, start))
    return (float(raw) if seen_dot else int(raw)), index


def _read_name(text: str, index: int):
    start = index
    while index < len(text) and (text[index].isalnum() or text[index] == "_"):
        index += 1
    return text[start:index], index
