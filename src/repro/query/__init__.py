"""A small textual query language for flexible relations.

The algebra of :mod:`repro.algebra` is the formal interface; this package adds the
convenience of a SQL-flavoured surface syntax so that examples, tests and interactive
use do not have to build expression trees by hand::

    SELECT name, typing_speed
    FROM employees
    WHERE salary > 5000 AND jobtype = 'secretary'
    GUARD typing_speed

Supported constructs (see :mod:`repro.query.parser` for the grammar):

* ``SELECT * | attribute list`` — projection (``*`` keeps every attribute),
* ``FROM r1, r2`` — cartesian product; ``FROM r1 JOIN r2 [ON (a, b)]`` — natural join,
* ``WHERE`` — comparisons (``=  != <> < <= > >=``), ``IN (...)``, ``HAS a, b``
  (an explicit type guard inside the predicate), ``AND`` / ``OR`` / ``NOT`` and
  parentheses; attribute-to-attribute comparisons are recognized when the right-hand
  side is an identifier,
* ``GUARD a, b`` — a type-guard operator applied after the selection,
* ``TAG attribute = literal`` — the extension operator ε (used for tagged unions),
* ``UNION`` / ``OUTER UNION`` / ``EXCEPT`` between query blocks.

``parse_query`` returns an ordinary :class:`repro.algebra.Expression`, so parsed
queries go through exactly the same optimizer and evaluator as hand-built ones;
:meth:`repro.engine.Database.query` is the one-call convenience wrapper.
"""

from repro.query.lexer import Token, tokenize
from repro.query.parser import parse_query

__all__ = ["Token", "tokenize", "parse_query"]
