"""Recursive-descent parser: query text → algebra expression.

Grammar (keywords case-insensitive)::

    query        :=  block ( ("UNION" ["OUTER"] | "OUTER" "UNION" | "EXCEPT") block )*
    block        :=  "SELECT" select_list "FROM" from_clause
                     [ "WHERE" predicate ] [ "GUARD" name_list ]
                     [ "TAG" NAME "=" literal ]
    select_list  :=  "*" | name_list
    from_clause  :=  join_expr ( "," join_expr )*                 -- "," is ×
    join_expr    :=  NAME ( ["NATURAL"] "JOIN" NAME [ "ON" "(" name_list ")" ] )*
    predicate    :=  or_expr
    or_expr      :=  and_expr ( "OR" and_expr )*
    and_expr     :=  not_expr ( "AND" not_expr )*
    not_expr     :=  "NOT" not_expr | primary
    primary      :=  "(" predicate ")" | "HAS" name_list | comparison
    comparison   :=  NAME op (literal | NAME)  |  NAME "IN" "(" literal_list ")"
    op           :=  "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
    literal      :=  NUMBER | STRING | "TRUE" | "FALSE" | "NULL"

The operator order inside a block is: FROM (products / joins), WHERE (selection),
GUARD (type guard), TAG (extension), SELECT (projection) — i.e. the projection is
applied last, as in SQL.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.algebra.expressions import (
    Expression,
    Extension,
    Difference,
    NaturalJoin,
    OuterUnion,
    Product,
    Projection,
    RelationRef,
    Selection,
    TypeGuardNode,
    Union,
)
from repro.algebra.predicates import (
    And,
    AttributeComparison,
    Comparison,
    Not,
    Or,
    Predicate,
    PresencePredicate,
)
from repro.query.lexer import QuerySyntaxError, Token, tokenize


def parse_query(text: str) -> Expression:
    """Parse query text into an algebra expression."""
    parser = _Parser(tokenize(text))
    expression = parser.parse_query()
    parser.expect("EOF")
    return expression


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token helpers ---------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        self._index += 1
        return token

    def check(self, kind: str) -> bool:
        return self.current.kind == kind

    def accept(self, kind: str) -> Optional[Token]:
        if self.check(kind):
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        if not self.check(kind):
            raise QuerySyntaxError(
                "expected {} but found {}".format(kind, self.current.describe())
            )
        return self.advance()

    # -- grammar ---------------------------------------------------------------------------

    def parse_query(self) -> Expression:
        expression = self.parse_block()
        while True:
            if self.accept("UNION"):
                outer = bool(self.accept("OUTER"))
                right = self.parse_block()
                expression = OuterUnion(expression, right) if outer else Union(expression, right)
            elif self.check("OUTER"):
                self.advance()
                self.expect("UNION")
                expression = OuterUnion(expression, self.parse_block())
            elif self.accept("EXCEPT"):
                expression = Difference(expression, self.parse_block())
            else:
                return expression

    def parse_block(self) -> Expression:
        self.expect("SELECT")
        projection = self.parse_select_list()
        self.expect("FROM")
        expression = self.parse_from_clause()
        if self.accept("WHERE"):
            expression = Selection(expression, self.parse_predicate())
        if self.accept("GUARD"):
            expression = TypeGuardNode(expression, self.parse_name_list())
        if self.accept("TAG"):
            attribute = self.expect("NAME").value
            self.expect_operator("=")
            expression = Extension(expression, attribute, self.parse_literal())
        if projection is not None:
            expression = Projection(expression, projection)
        return expression

    def parse_select_list(self) -> Optional[List[str]]:
        if self.accept("STAR"):
            return None
        return self.parse_name_list()

    def parse_name_list(self) -> List[str]:
        names = [self.expect("NAME").value]
        while self.accept("COMMA"):
            names.append(self.expect("NAME").value)
        return names

    def parse_from_clause(self) -> Expression:
        expression = self.parse_join_expression()
        while self.accept("COMMA"):
            expression = Product(expression, self.parse_join_expression())
        return expression

    def parse_join_expression(self) -> Expression:
        expression: Expression = RelationRef(self.expect("NAME").value)
        while True:
            if self.accept("NATURAL"):
                self.expect("JOIN")
            elif self.accept("JOIN"):
                pass
            else:
                return expression
            right = RelationRef(self.expect("NAME").value)
            on = None
            if self.accept("ON"):
                self.expect("LPAREN")
                on = self.parse_name_list()
                self.expect("RPAREN")
            expression = NaturalJoin(expression, right, on=on)

    # -- predicates ----------------------------------------------------------------------------

    def parse_predicate(self) -> Predicate:
        return self.parse_or()

    def parse_or(self) -> Predicate:
        operands = [self.parse_and()]
        while self.accept("OR"):
            operands.append(self.parse_and())
        return operands[0] if len(operands) == 1 else Or(*operands)

    def parse_and(self) -> Predicate:
        operands = [self.parse_not()]
        while self.accept("AND"):
            operands.append(self.parse_not())
        return operands[0] if len(operands) == 1 else And(*operands)

    def parse_not(self) -> Predicate:
        if self.accept("NOT"):
            return Not(self.parse_not())
        return self.parse_primary()

    def parse_primary(self) -> Predicate:
        if self.accept("LPAREN"):
            predicate = self.parse_predicate()
            self.expect("RPAREN")
            return predicate
        if self.accept("HAS"):
            return PresencePredicate(self.parse_name_list())
        return self.parse_comparison()

    def parse_comparison(self) -> Predicate:
        attribute = self.expect("NAME").value
        if self.accept("IN"):
            self.expect("LPAREN")
            values = [self.parse_literal()]
            while self.accept("COMMA"):
                values.append(self.parse_literal())
            self.expect("RPAREN")
            return Comparison(attribute, "in", values)
        operator = self.expect("OP").value
        if self.check("NAME"):
            other = self.advance().value
            return AttributeComparison(attribute, operator, other)
        return Comparison(attribute, operator, self.parse_literal())

    def expect_operator(self, symbol: str) -> None:
        token = self.expect("OP")
        if token.value != symbol:
            raise QuerySyntaxError("expected {!r} but found {}".format(symbol, token.describe()))

    def parse_literal(self):
        if self.check("NUMBER") or self.check("STRING"):
            return self.advance().value
        if self.accept("TRUE"):
            return True
        if self.accept("FALSE"):
            return False
        if self.accept("NULL"):
            return None
        raise QuerySyntaxError("expected a literal but found {}".format(self.current.describe()))
