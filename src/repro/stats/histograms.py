"""Equi-depth histograms over attribute values.

An equi-depth (equi-height) histogram splits the sorted multiset of observed
values into buckets holding roughly the same number of values, so skewed
distributions get fine-grained buckets exactly where the data is dense.  The
planner asks a histogram one question: *which fraction of the observed values is
at most a given constant?* (:meth:`EquiDepthHistogram.fraction_leq`); the
operator-specific logic — and the exact point mass of heavy values, taken from
the most-common-value counts — lives in
:meth:`repro.stats.statistics.AttributeStatistics.range_fraction`.

Values only need to be mutually comparable (all numbers, or all strings);
:func:`build_histogram` returns ``None`` for attribute populations that cannot
be sorted, and estimation degrades to the default constants upstream.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

#: default number of buckets collected by ANALYZE
DEFAULT_BUCKETS = 32


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class EquiDepthHistogram:
    """An equi-depth histogram: bucket boundaries plus per-bucket counts.

    ``lowers[i] .. uppers[i]`` is the (inclusive) value range of bucket ``i`` and
    ``counts[i]`` how many observed values fell into it.  Buckets are contiguous
    in sort order and non-overlapping except possibly at their boundary value
    (heavy values may span buckets — their count mass is still correct).
    """

    def __init__(self, lowers: Sequence, uppers: Sequence, counts: Sequence[int]):
        if not (len(lowers) == len(uppers) == len(counts)) or not counts:
            raise ValueError("histogram needs parallel, non-empty boundary/count lists")
        self.lowers = list(lowers)
        self.uppers = list(uppers)
        self.counts = [int(c) for c in counts]
        self.total = sum(self.counts)

    # -- estimation -----------------------------------------------------------------------

    def fraction_leq(self, value) -> float:
        """Estimated fraction of observed values ``<= value``."""
        if self.total == 0:
            return 0.0
        covered = 0.0
        for lower, upper, count in zip(self.lowers, self.uppers, self.counts):
            if upper <= value:
                covered += count
            elif lower > value:
                break
            else:
                covered += count * self._within(lower, upper, value)
        return min(1.0, covered / self.total)

    @staticmethod
    def _within(lower, upper, value) -> float:
        """Fraction of a bucket assumed ``<= value`` (linear interpolation)."""
        if _is_number(lower) and _is_number(upper) and _is_number(value) and upper > lower:
            return max(0.0, min(1.0, (value - lower) / float(upper - lower)))
        # Non-numeric bucket (e.g. strings): assume half the bucket qualifies.
        return 0.5

    # -- serialization --------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {"lowers": self.lowers, "uppers": self.uppers, "counts": self.counts}

    @classmethod
    def from_dict(cls, data: dict) -> "EquiDepthHistogram":
        return cls(data["lowers"], data["uppers"], data["counts"])

    def __len__(self) -> int:
        return len(self.counts)

    def __repr__(self) -> str:
        return "EquiDepthHistogram(buckets={}, values={})".format(len(self.counts), self.total)


def build_histogram(values: Sequence, max_buckets: int = DEFAULT_BUCKETS) -> Optional[EquiDepthHistogram]:
    """Build an equi-depth histogram, or ``None`` for unsortable populations."""
    if not values or max_buckets < 1:
        return None
    try:
        ordered = sorted(values)
    except TypeError:
        return None
    total = len(ordered)
    buckets = min(max_buckets, total)
    lowers: List = []
    uppers: List = []
    counts: List[int] = []
    start = 0
    for bucket in range(buckets):
        end = ((bucket + 1) * total) // buckets
        if end <= start:
            continue
        lowers.append(ordered[start])
        uppers.append(ordered[end - 1])
        counts.append(end - start)
        start = end
    return EquiDepthHistogram(lowers, uppers, counts)
