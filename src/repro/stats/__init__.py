"""Statistics subsystem: ANALYZE, histograms and variant-tag frequency tables.

The fourth planning layer of the system.  ``repro.model`` defines what data
looks like, ``repro.algebra`` what queries mean, ``repro.exec`` how they run —
this package tells the planner what the data *is*:

* :mod:`repro.stats.histograms`  — equi-depth histograms over attribute values;
* :mod:`repro.stats.statistics`  — :func:`analyze_table` producing per-table
  :class:`TableStatistics`: cardinality, per-attribute NDV / min-max / presence
  fractions / most-common values, and the paper-specific **variant-tag
  frequency table** (fraction of tuples satisfying each type guard);
* :mod:`repro.stats.catalog`     — the :class:`StatisticsCatalog` stored on a
  :class:`~repro.engine.Database`: versioned, auto-invalidated by DML, and the
  object :class:`~repro.optimizer.cost.CostModel` consults.

Entry points on the database facade: ``Database.analyze()``,
``Database.stats()``, and ``Database.plan()`` explain output with
``est_rows`` / ``est_cost`` derived from these statistics.
"""

from repro.stats.catalog import StatisticsCatalog
from repro.stats.histograms import DEFAULT_BUCKETS, EquiDepthHistogram, build_histogram
from repro.stats.statistics import (
    DEFAULT_MOST_COMMON,
    DEFAULT_SAMPLE_SEED,
    AttributeStatistics,
    TableStatistics,
    analyze_table,
    estimate_ndv,
    join_selectivity,
    reservoir_sample,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_MOST_COMMON",
    "DEFAULT_SAMPLE_SEED",
    "AttributeStatistics",
    "EquiDepthHistogram",
    "StatisticsCatalog",
    "TableStatistics",
    "analyze_table",
    "build_histogram",
    "estimate_ndv",
    "join_selectivity",
    "reservoir_sample",
]
