"""Per-table statistics: cardinality, attribute distributions, variant-tag frequencies.

:func:`analyze_table` is the ANALYZE entry point: one pass over a stored table
produces a :class:`TableStatistics` holding

* the row count,
* per-attribute statistics (:class:`AttributeStatistics`): how many tuples carry
  the attribute at all (the *presence fraction* — in a flexible relation an
  attribute can simply be absent, the paper's structural-variant twist on NULLs),
  the number of distinct values, min/max, an equi-depth histogram and the most
  common values with their exact frequencies,
* the **variant-tag frequency table**: how many tuples exhibit each observed
  attribute combination.  The fraction of tuples satisfying a type guard on
  ``X`` is the summed frequency of the combinations that include ``X`` —
  exactly the number the optimizer needs to cost ``TG[X]`` nodes and
  guard-aware joins.

:meth:`TableStatistics.selectivity` estimates the fraction of rows satisfying a
selection predicate from these distributions; :func:`join_selectivity` combines
two tables' statistics into a natural-join selectivity (distinct-value overlap
plus both sides' tag frequencies on the join attributes).
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.algebra.predicates import (
    And,
    AttributeComparison,
    Comparison,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    PresencePredicate,
    TruePredicate,
)
from repro.model.attributes import attrset
from repro.stats.histograms import DEFAULT_BUCKETS, EquiDepthHistogram, build_histogram

#: how many of the most common values ANALYZE keeps exact frequencies for
DEFAULT_MOST_COMMON = 16

#: selectivity assumed for predicate shapes the statistics cannot estimate
FALLBACK_SELECTIVITY = 0.5

#: seed of the reservoir sampler (deterministic ANALYZE unless overridden)
DEFAULT_SAMPLE_SEED = 0x5EED


def _clamp(fraction: float) -> float:
    return max(0.0, min(1.0, fraction))


class AttributeStatistics:
    """The collected distribution of one attribute within one table.

    All fractions returned by the estimation methods are relative to the *whole
    table* (absent attributes make a comparison false, so absence is part of the
    selectivity), not just to the tuples carrying the attribute.
    """

    def __init__(
        self,
        name: str,
        row_count: int,
        present_count: int,
        ndv: int,
        min_value=None,
        max_value=None,
        histogram: Optional[EquiDepthHistogram] = None,
        most_common: Optional[Dict] = None,
        mcv_complete: bool = False,
    ):
        self.name = name
        self.row_count = int(row_count)
        self.present_count = int(present_count)
        self.ndv = int(ndv)
        self.min_value = min_value
        self.max_value = max_value
        self.histogram = histogram
        #: value -> exact count for the most common values
        self.most_common: Dict = dict(most_common or {})
        #: True when ``most_common`` covers every distinct value of the attribute
        self.mcv_complete = mcv_complete

    @property
    def presence(self) -> float:
        """Fraction of tuples defined on the attribute (``1 - null_fraction``)."""
        if self.row_count <= 0:
            return 0.0
        return self.present_count / float(self.row_count)

    @property
    def null_fraction(self) -> float:
        """Fraction of tuples *not* carrying the attribute."""
        return 1.0 - self.presence

    # -- estimation -----------------------------------------------------------------------

    def equality_fraction(self, value) -> float:
        """Estimated fraction of table rows with ``attribute = value``."""
        if self.row_count <= 0 or self.present_count <= 0:
            return 0.0
        try:
            in_mcv = value in self.most_common
        except TypeError:
            # Unhashable comparison constant (e.g. a list): stored values are
            # always hashable, so no row can equal it.
            return 0.0
        if in_mcv:
            return self.most_common[value] / float(self.row_count)
        if self.mcv_complete:
            return 0.0
        remaining_mass = self.present_count - sum(self.most_common.values())
        remaining_ndv = max(1, self.ndv - len(self.most_common))
        return _clamp(remaining_mass / float(remaining_ndv) / float(self.row_count))

    def range_fraction(self, op: str, value) -> Optional[float]:
        """Estimated fraction of table rows with ``attribute <op> value``.

        The histogram supplies the cumulative ``<=`` fraction; the mass sitting
        exactly on the constant — which matters a lot for heavy values of
        low-NDV attributes — comes from the exact most-common-value counts
        rather than a histogram guess.  ``None`` when the histogram cannot
        answer (no histogram, incomparable constant); the caller then falls
        back to the default constants.
        """
        if self.histogram is None:
            return None
        try:
            cumulative = self.histogram.fraction_leq(value)
        except TypeError:
            return None
        if self.presence > 0.0:
            point_mass = _clamp(self.equality_fraction(value) / self.presence)
        else:
            point_mass = 0.0
        if op == "<=":
            fraction = cumulative
        elif op == "<":
            fraction = cumulative - point_mass
        elif op == ">":
            fraction = 1.0 - cumulative
        elif op == ">=":
            fraction = 1.0 - cumulative + point_mass
        else:
            return None
        return _clamp(_clamp(fraction) * self.presence)

    def comparison_fraction(self, op: str, value) -> Optional[float]:
        """Estimated selectivity of any supported comparison operator."""
        if op in ("=", "=="):
            return self.equality_fraction(value)
        if op in ("!=", "<>"):
            return _clamp(self.presence - self.equality_fraction(value))
        if op in ("<", "<=", ">", ">="):
            return self.range_fraction(op, value)
        if op == "in":
            try:
                items = list(value)
            except TypeError:
                return None
            total = sum(self.equality_fraction(item) for item in items)
            return _clamp(min(total, self.presence))
        return None

    # -- serialization --------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "row_count": self.row_count,
            "present_count": self.present_count,
            "ndv": self.ndv,
            "min": self.min_value,
            "max": self.max_value,
            "histogram": self.histogram.to_dict() if self.histogram is not None else None,
            "most_common": [[value, count] for value, count in self.most_common.items()],
            "mcv_complete": self.mcv_complete,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttributeStatistics":
        histogram = data.get("histogram")
        return cls(
            data["name"],
            data["row_count"],
            data["present_count"],
            data["ndv"],
            min_value=data.get("min"),
            max_value=data.get("max"),
            histogram=EquiDepthHistogram.from_dict(histogram) if histogram else None,
            most_common={value: count for value, count in data.get("most_common", [])},
            mcv_complete=data.get("mcv_complete", False),
        )

    def __repr__(self) -> str:
        return "AttributeStatistics({!r}, presence={:.2f}, ndv={})".format(
            self.name, self.presence, self.ndv
        )


class TableStatistics:
    """Everything ANALYZE collected about one table."""

    def __init__(
        self,
        name: str,
        row_count: int,
        attributes: Optional[Dict[str, AttributeStatistics]] = None,
        variant_counts: Optional[Dict[FrozenSet[str], int]] = None,
    ):
        self.name = name
        self.row_count = int(row_count)
        self.attributes: Dict[str, AttributeStatistics] = dict(attributes or {})
        #: attribute combination (variant tag) -> number of tuples exhibiting it
        self.variant_counts: Dict[FrozenSet[str], int] = {
            frozenset(combo): int(count) for combo, count in (variant_counts or {}).items()
        }
        #: set by the catalog when the underlying table mutated after ANALYZE
        self.stale = False
        #: True when ANALYZE read a reservoir sample instead of every tuple;
        #: counts/NDV are then scaled estimates, ``sample_rows`` tells how many
        #: tuples were actually read
        self.sampled = False
        self.sample_rows: Optional[int] = None

    # -- introspection --------------------------------------------------------------------

    def attribute_names(self) -> List[str]:
        """Every attribute observed in at least one tuple, sorted."""
        return sorted(self.attributes)

    def attribute(self, name: str) -> Optional[AttributeStatistics]:
        return self.attributes.get(name)

    def ndv(self, name: str) -> int:
        stats = self.attributes.get(name)
        return stats.ndv if stats is not None else 0

    def average_width(self) -> float:
        """Average number of attributes a tuple carries.

        Derived from the variant-tag frequency table (exact at ANALYZE time,
        scaled under sampling), falling back to summed per-attribute presence
        fractions.  Feeds the planner's adaptive batch sizing — wide variant
        tuples get smaller batches.
        """
        if self.row_count <= 0:
            return 0.0
        if self.variant_counts:
            observed = sum(self.variant_counts.values())
            if observed > 0:
                total = sum(len(combo) * count
                            for combo, count in self.variant_counts.items())
                return total / float(observed)
        return sum(stats.presence for stats in self.attributes.values())

    def variant_frequencies(self) -> Dict[FrozenSet[str], float]:
        """The variant-tag frequency table as fractions of the row count."""
        if self.row_count <= 0:
            return {}
        return {combo: count / float(self.row_count)
                for combo, count in self.variant_counts.items()}

    # -- estimation -----------------------------------------------------------------------

    def guard_selectivity(self, attributes) -> float:
        """Fraction of tuples satisfying the type guard ``TG[attributes]``.

        Summed frequency of the observed variant tags that include every guarded
        attribute — exact at ANALYZE time, an estimate afterwards.
        """
        wanted = frozenset(a.name for a in attrset(attributes))
        if not wanted:
            return 1.0
        if self.row_count <= 0:
            return 0.0
        matching = sum(count for combo, count in self.variant_counts.items()
                       if wanted.issubset(combo))
        return _clamp(matching / float(self.row_count))

    def selectivity(self, predicate: Predicate) -> float:
        """Estimated fraction of table rows satisfying ``predicate``."""
        if isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, FalsePredicate):
            return 0.0
        if isinstance(predicate, Comparison):
            name = next(iter(predicate.attribute)).name
            stats = self.attributes.get(name)
            if stats is None:
                # The attribute never occurred in the analyzed data: no tuple can
                # satisfy a guarded comparison on it.
                return 0.0
            fraction = stats.comparison_fraction(predicate.op, predicate.value)
            if fraction is None:
                return _clamp(FALLBACK_SELECTIVITY * stats.presence)
            return _clamp(fraction)
        if isinstance(predicate, PresencePredicate):
            return self.guard_selectivity(predicate.attributes)
        if isinstance(predicate, AttributeComparison):
            left = next(iter(predicate.left)).name
            right = next(iter(predicate.right)).name
            both_present = self.guard_selectivity([left, right])
            if predicate.op in ("=", "=="):
                distinct = max(self.ndv(left), self.ndv(right), 1)
                return _clamp(both_present / float(distinct))
            return _clamp(both_present * FALLBACK_SELECTIVITY)
        if isinstance(predicate, And):
            return self._and_selectivity(predicate)
        if isinstance(predicate, Or):
            # Equality disjuncts over one attribute are mutually exclusive: their
            # selectivities add up exactly.  Anything else assumes independence.
            if self._single_attribute_equalities(predicate.operands):
                return _clamp(sum(self.selectivity(operand)
                                  for operand in predicate.operands))
            miss = 1.0
            for operand in predicate.operands:
                miss *= 1.0 - self.selectivity(operand)
            return _clamp(1.0 - miss)
        if isinstance(predicate, Not):
            return _clamp(1.0 - self.selectivity(predicate.operand))
        return FALLBACK_SELECTIVITY

    def _and_selectivity(self, predicate: And) -> float:
        """Selectivity of a conjunction, pricing attribute presence exactly once.

        Each comparison (and explicit presence test) requires its attribute to
        be present; naively multiplying whole-table fractions would charge that
        presence once per conjunct.  Instead the *joint* presence of every
        required attribute is priced once — through the variant-tag frequency
        table, which captures correlated presence exactly — and each conjunct
        only contributes its selectivity *among rows carrying its attributes*:
        comparisons via their conditional fraction, nested predicates (OR, NOT)
        by dividing out the presence of the attributes already covered by the
        joint term.
        """
        required = set()
        comparisons = []
        others = []
        for operand in predicate.operands:
            if isinstance(operand, PresencePredicate):
                required.update(a.name for a in operand.attributes)
            elif isinstance(operand, Comparison):
                required.add(next(iter(operand.attribute)).name)
                comparisons.append(operand)
            else:
                others.append(operand)
        conditional = 1.0
        for operand in comparisons:
            stats = self.attributes.get(next(iter(operand.attribute)).name)
            if stats is None:
                return 0.0
            fraction = stats.comparison_fraction(operand.op, operand.value)
            if fraction is None:
                conditional *= FALLBACK_SELECTIVITY
            elif stats.presence > 0.0:
                conditional *= _clamp(fraction / stats.presence)
            else:
                return 0.0
        for operand in others:
            fraction = self.selectivity(operand)
            overlap = {a.name for a in operand.attributes} & required
            if overlap:
                already_priced = self.guard_selectivity(sorted(overlap))
                if already_priced > 0.0:
                    fraction = min(1.0, fraction / already_priced)
            conditional *= fraction
        return _clamp(self.guard_selectivity(sorted(required)) * conditional)

    @staticmethod
    def _single_attribute_equalities(operands) -> bool:
        """Whether all operands are equality comparisons against one attribute."""
        names = set()
        for operand in operands:
            if not isinstance(operand, Comparison) or operand.op not in ("=", "=="):
                return False
            names.add(next(iter(operand.attribute)).name)
        return len(names) == 1

    # -- serialization --------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "row_count": self.row_count,
            "sampled": self.sampled,
            "sample_rows": self.sample_rows,
            "attributes": {name: stats.to_dict() for name, stats in self.attributes.items()},
            "variants": [
                {"attributes": sorted(combo), "count": count}
                for combo, count in sorted(self.variant_counts.items(),
                                           key=lambda item: sorted(item[0]))
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TableStatistics":
        statistics = cls(
            data["name"],
            data["row_count"],
            attributes={name: AttributeStatistics.from_dict(entry)
                        for name, entry in data.get("attributes", {}).items()},
            variant_counts={frozenset(entry["attributes"]): entry["count"]
                            for entry in data.get("variants", [])},
        )
        statistics.sampled = bool(data.get("sampled", False))
        statistics.sample_rows = data.get("sample_rows")
        return statistics

    def __repr__(self) -> str:
        return "TableStatistics({!r}, rows={}, attributes={}, variants={}{}{})".format(
            self.name, self.row_count, len(self.attributes), len(self.variant_counts),
            ", sampled" if self.sampled else "",
            ", stale" if self.stale else "",
        )


def join_selectivity(left: TableStatistics, right: TableStatistics, attributes) -> float:
    """Estimated fraction of left×right pairs surviving a natural join on ``attributes``.

    Per join attribute the classic distinct-value overlap ``1 / max(ndv_L, ndv_R)``,
    multiplied by both sides' variant-tag frequency of actually *carrying* the join
    attributes (tuples lacking one can never join — the flexible-relation twist).
    """
    names = [a.name for a in attrset(attributes)]
    if not names:
        return FALLBACK_SELECTIVITY
    selectivity = left.guard_selectivity(names) * right.guard_selectivity(names)
    for name in names:
        selectivity /= float(max(left.ndv(name), right.ndv(name), 1))
    return _clamp(selectivity)


def reservoir_sample(tuples: Iterable, sample_size: int,
                     seed: int = DEFAULT_SAMPLE_SEED) -> Tuple[List, int]:
    """Algorithm-R reservoir sampling in one streaming pass.

    Returns ``(sample, total)`` where ``sample`` holds ``min(sample_size, total)``
    uniformly chosen items and ``total`` is the number of items seen — the pass
    that samples also counts, so the true cardinality stays exact.
    """
    rng = random.Random(seed)
    randrange = rng.randrange
    sample: List = []
    append = sample.append
    total = 0
    for item in tuples:
        if total < sample_size:
            append(item)
        else:
            slot = randrange(total + 1)
            if slot < sample_size:
                sample[slot] = item
        total += 1
    return sample, total


def estimate_ndv(sample_ndv: int, singletons: int, sample_rows: int,
                 total_rows: int) -> int:
    """GEE (Guaranteed-Error Estimator) scale-up of a sampled distinct count.

    ``sqrt(n/r) · f₁ + (d − f₁)``: values seen once in the sample (``f₁``) are
    the ones whose population frequency is uncertain, so their count is scaled
    by ``sqrt(n/r)``; values seen repeatedly were going to be seen anyway.
    Clamped to ``[d, n]``.
    """
    if sample_rows <= 0 or total_rows <= sample_rows:
        return sample_ndv
    scale = math.sqrt(total_rows / float(sample_rows))
    estimate = scale * singletons + (sample_ndv - singletons)
    return int(min(max(estimate, sample_ndv), total_rows))


def analyze_table(
    table,
    max_buckets: int = DEFAULT_BUCKETS,
    most_common: int = DEFAULT_MOST_COMMON,
    sample_size: Optional[int] = None,
    seed: int = DEFAULT_SAMPLE_SEED,
) -> TableStatistics:
    """Collect :class:`TableStatistics` from a stored table (or any tuple iterable).

    ``table`` needs a ``name`` attribute and iteration over
    :class:`~repro.model.tuples.FlexTuple`-like objects; this covers
    :class:`repro.engine.Table`, :class:`repro.model.relation.FlexibleRelation`
    and plain collections of tuples.

    ``sample_size`` turns on sampling-based ANALYZE: tables with more rows than
    the threshold are reservoir-sampled (one streaming pass, Algorithm R) and
    per-attribute statistics are computed on the sample, then scaled to the
    exact total row count — presence counts and variant-tag/most-common-value
    frequencies linearly, distinct counts with the GEE estimator
    (:func:`estimate_ndv`).  Tables at or below the threshold are analyzed
    exactly, so small tables lose nothing.
    """
    name = getattr(table, "name", None) or "<anonymous>"
    sampled = False
    total_rows: Optional[int] = None
    rows = table
    if sample_size is not None and sample_size > 0:
        sample, total = reservoir_sample(table, sample_size, seed=seed)
        # The sampling pass consumed the source, so analysis always proceeds
        # from the reservoir: below the threshold it holds every tuple (exact
        # statistics, and one-shot iterables / re-iterable tables both read
        # exactly once); above it the statistics are scaled up.
        rows = sample
        if total > sample_size:
            sampled = True
            total_rows = total

    values_by_attribute: Dict[str, List] = {}
    variant_counts: Counter = Counter()
    row_count = 0
    for tup in rows:
        row_count += 1
        names: List[str] = []
        for attribute, value in tup.items():
            names.append(attribute)
            values_by_attribute.setdefault(attribute, []).append(value)
        variant_counts[frozenset(names)] += 1

    if total_rows is None:
        total_rows = row_count
    scale = total_rows / float(row_count) if row_count else 1.0

    attributes: Dict[str, AttributeStatistics] = {}
    for attribute, values in values_by_attribute.items():
        counter = Counter(values)
        ndv = len(counter)
        top = dict(counter.most_common(most_common))
        try:
            min_value, max_value = min(values), max(values)
        except TypeError:
            min_value = max_value = None
        if sampled:
            singletons = sum(1 for count in counter.values() if count == 1)
            present = int(round(len(values) * scale))
            ndv = estimate_ndv(ndv, singletons, len(values), present)
            top = {value: max(1, int(round(count * scale)))
                   for value, count in top.items()}
            complete = False
        else:
            present = len(values)
            complete = len(counter) <= len(top)
        attributes[attribute] = AttributeStatistics(
            attribute,
            total_rows,
            present_count=present,
            ndv=ndv,
            min_value=min_value,
            max_value=max_value,
            histogram=build_histogram(values, max_buckets=max_buckets),
            most_common=top,
            mcv_complete=complete,
        )

    if sampled:
        variant_counts = Counter({combo: max(1, int(round(count * scale)))
                                  for combo, count in variant_counts.items()})
    statistics = TableStatistics(name, total_rows, attributes, dict(variant_counts))
    statistics.sampled = sampled
    statistics.sample_rows = row_count if sampled else None
    return statistics
