"""The statistics catalog: versioned, mutation-invalidated ANALYZE results.

A :class:`StatisticsCatalog` lives on a :class:`~repro.engine.Database` and is
the single source the cost model consults.  Its contract:

* :meth:`analyze` collects fresh :class:`~repro.stats.statistics.TableStatistics`
  for one or all tables and records a *fingerprint* (the table object plus its
  mutation counter) for each;
* :meth:`get` hands out statistics **only while they are fresh** — any DML on
  the table (insert / update / delete / transaction rollback) or a drop of the
  table makes them stale, so stale distributions can never mislead the planner;
* stale statistics are kept around (inspect them via :meth:`peek`) and their
  ``row_count`` is maintained incrementally on inserts and deletes, but the
  planner falls back to the default constants until the next ANALYZE;
* :attr:`version` increases whenever the *planning-relevant* state changes:
  an ANALYZE, an explicit invalidation, the first mutation that turns fresh
  statistics stale, or — independently of any ANALYZE — a table's cardinality
  crossing a power-of-two boundary since the version last changed for it.  The
  last rule matters for never-analyzed databases: plans are cached against the
  version, and a nested-loop join cached while a table held five rows must be
  re-planned once the table has grown past a few doublings.  The physical
  executor mixes this version into its plan cache key.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.trace import tracer_of
from repro.stats.statistics import TableStatistics, analyze_table


class _Entry:
    """One table's statistics plus the freshness fingerprint they were taken at."""

    __slots__ = ("statistics", "table", "mutation_count", "analyzed_rows",
                 "sample_size")

    def __init__(self, statistics: TableStatistics, table, mutation_count: int,
                 sample_size: Optional[int] = None):
        self.statistics = statistics
        self.table = table
        self.mutation_count = mutation_count
        #: row count at ANALYZE time — the baseline of the auto-ANALYZE threshold
        self.analyzed_rows = statistics.row_count
        #: the sampling knob ANALYZE was run with (auto re-ANALYZE reuses it)
        self.sample_size = sample_size


class StatisticsCatalog:
    """Per-database registry of ANALYZE results with freshness tracking.

    ``auto_analyze=True`` additionally re-runs ANALYZE on a previously analyzed
    table as soon as the mutations since its last ANALYZE exceed
    ``auto_analyze_fraction`` of the rows it had back then — but never fewer
    than ``auto_analyze_min_mutations``, so tiny tables are not re-analyzed on
    every single insert during a bulk load.  The re-ANALYZE reuses the table's
    last ``sample_size``, so sampled tables stay cheap to refresh.  Off by
    default: statistics only move on explicit calls.
    """

    def __init__(self, database, auto_analyze: bool = False,
                 auto_analyze_fraction: float = 0.1,
                 auto_analyze_min_mutations: int = 5):
        self._database = database
        self._entries: Dict[str, _Entry] = {}
        #: per-table size magnitude (``row_count.bit_length()``) at the last
        #: version bump — crossing it re-plans cached plans (see class docstring)
        self._magnitudes: Dict[str, int] = {}
        self._version = 0
        self.auto_analyze = auto_analyze
        self.auto_analyze_fraction = auto_analyze_fraction
        self.auto_analyze_min_mutations = max(1, int(auto_analyze_min_mutations))
        self._auto_analyzing = False

    @property
    def version(self) -> int:
        """Bumped on ANALYZE, invalidation, and fresh→stale transitions."""
        return self._version

    # -- collection ----------------------------------------------------------------------

    def analyze(self, name: Optional[str] = None,
                sample_size: Optional[int] = None) -> "StatisticsCatalog":
        """Run ANALYZE over one table (or every table) of the database.

        ``sample_size`` reservoir-samples tables above that row threshold and
        scales their statistics (see :func:`~repro.stats.statistics.analyze_table`);
        ``None`` reads every tuple.
        """
        names = [name] if name is not None else self._database.tables()
        tracer = tracer_of(self._database)
        for table_name in names:
            table = self._database.table(table_name)
            statistics = analyze_table(table, sample_size=sample_size)
            self._entries[table_name] = _Entry(
                statistics, table, getattr(table, "mutation_count", 0),
                sample_size=sample_size,
            )
            if tracer is not None:
                tracer.event("analyze", table=table_name,
                             rows=statistics.row_count,
                             sample_size=sample_size,
                             auto=self._auto_analyzing)
        self._version += 1
        return self

    def restore(self, name: str, statistics: TableStatistics) -> None:
        """Install deserialized statistics as fresh for the table's current state."""
        table = self._database.table(name)
        self._entries[name] = _Entry(statistics, table, getattr(table, "mutation_count", 0))
        self._version += 1

    # -- transaction rollback support ------------------------------------------------------

    def capture(self) -> Dict[str, object]:
        """An opaque snapshot of the planning-relevant state, for rollback.

        ``Database.transaction`` takes one on entry; :meth:`rollback_capture`
        puts everything back after the table contents have been restored, so a
        rolled-back transaction leaves no trace in the version counter and
        previously fresh statistics become fresh again.
        """
        return {
            "version": self._version,
            "magnitudes": dict(self._magnitudes),
            "entries": {
                name: (entry, entry.statistics.stale, entry.statistics.row_count)
                for name, entry in self._entries.items()
            },
        }

    def rollback_capture(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`capture` after the tables were rolled back.

        Entries analyzed *during* the transaction described rolled-back
        contents and are dropped; entries from before it get their in-place
        mutations (stale flag, incremental row count) undone and their
        freshness fingerprint re-synchronized to the restored table — the
        contents are identical to when the statistics were collected, so
        statistics that were fresh at entry are fresh again.  Tables dropped
        inside the transaction (DDL survives rollback) lose their entries.
        """
        self._entries = {}
        for name, (entry, stale, row_count) in state["entries"].items():
            try:
                table = self._database.table(name)
            except Exception:
                continue
            entry.statistics.stale = stale
            entry.statistics.row_count = row_count
            entry.table = table
            entry.mutation_count = getattr(table, "mutation_count", 0)
            self._entries[name] = entry
        self._magnitudes = dict(state["magnitudes"])
        self._version = state["version"]

    # -- lookup --------------------------------------------------------------------------

    def _is_fresh(self, name: str, entry: _Entry) -> bool:
        if entry.statistics.stale:
            return False
        try:
            table = self._database.table(name)
        except Exception:
            return False
        return table is entry.table and getattr(table, "mutation_count", 0) == entry.mutation_count

    def get(self, name: str) -> Optional[TableStatistics]:
        """Fresh statistics for ``name``, or ``None`` (never analyzed / gone stale)."""
        entry = self._entries.get(name)
        if entry is None or not self._is_fresh(name, entry):
            return None
        return entry.statistics

    def peek(self, name: str) -> Optional[TableStatistics]:
        """The last collected statistics regardless of freshness (``.stale`` tells)."""
        entry = self._entries.get(name)
        if entry is None:
            return None
        if not self._is_fresh(name, entry):
            entry.statistics.stale = True
        return entry.statistics

    def is_fresh(self, name: str) -> bool:
        entry = self._entries.get(name)
        return entry is not None and self._is_fresh(name, entry)

    def names(self) -> List[str]:
        """Every table with collected (fresh or stale) statistics, sorted."""
        return sorted(self._entries)

    def fresh_names(self) -> List[str]:
        return [name for name in self.names() if self.is_fresh(name)]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # -- invalidation --------------------------------------------------------------------

    def note_mutation(self, name: str, kind: str) -> None:
        """Called by the engine on every DML statement against ``name``.

        The first mutation after an ANALYZE turns the statistics stale and bumps
        the catalog version (invalidating cached plans); row counts keep being
        maintained incrementally so ``peek`` stays approximately right.  For
        every table — analyzed or not — a cardinality change across a
        power-of-two boundary also bumps the version, so cached join-algorithm
        choices are revisited as tables grow or shrink substantially.

        The database's cardinality-feedback store piggybacks on the same hook:
        observed row counts for subexpressions reading the mutated table are
        no longer evidence and are dropped (O(1) when the table has none).
        """
        feedback = getattr(self._database, "cardinality_feedback", None)
        if feedback is not None:
            feedback.invalidate_table(name)
        entry = self._entries.get(name)
        if entry is not None:
            if not entry.statistics.stale:
                entry.statistics.stale = True
                self._version += 1
            if kind == "insert":
                entry.statistics.row_count += 1
            elif kind == "delete":
                entry.statistics.row_count = max(0, entry.statistics.row_count - 1)
            elif kind == "restore":
                # A snapshot restore (transaction rollback) replaces the contents
                # wholesale: resynchronize from the live table.
                try:
                    entry.statistics.row_count = len(self._database.table(name))
                except Exception:
                    pass
        self._track_magnitude(name)
        if entry is not None:
            self._maybe_auto_analyze(name, entry)

    def _maybe_auto_analyze(self, name: str, entry: _Entry) -> None:
        """Re-ANALYZE ``name`` when its mutations passed the auto threshold."""
        if not self.auto_analyze or self._auto_analyzing:
            return
        mutations = getattr(entry.table, "mutation_count", 0) - entry.mutation_count
        threshold = max(self.auto_analyze_min_mutations,
                        int(self.auto_analyze_fraction * entry.analyzed_rows))
        if mutations < threshold:
            return
        tracer = tracer_of(self._database)
        if tracer is not None:
            tracer.event("auto-analyze", table=name, mutations=mutations,
                         threshold=threshold)
        self._auto_analyzing = True
        try:
            self.analyze(name, sample_size=entry.sample_size)
        finally:
            self._auto_analyzing = False

    def _track_magnitude(self, name: str) -> None:
        try:
            size = len(self._database.table(name))
        except Exception:
            return
        magnitude = int(size).bit_length()
        previous = self._magnitudes.get(name)
        if previous is None:
            self._magnitudes[name] = magnitude
        elif magnitude != previous:
            self._magnitudes[name] = magnitude
            self._version += 1

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop collected statistics (and size tracking) for one or all tables."""
        if name is None:
            changed = bool(self._entries)
            self._entries.clear()
            self._magnitudes.clear()
        else:
            changed = name in self._entries
            self._entries.pop(name, None)
            self._magnitudes.pop(name, None)
        if changed:
            self._version += 1

    def __repr__(self) -> str:
        return "StatisticsCatalog(tables={}, fresh={}, version={})".format(
            self.names(), self.fresh_names(), self._version
        )
