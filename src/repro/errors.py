"""Exception hierarchy for the flexible-relations library.

Every error raised by the library derives from :class:`ReproError`, so callers can
catch a single base class.  The hierarchy mirrors the layers of the system:

* scheme errors (malformed flexible schemes),
* tuple/type errors (a tuple does not fit a scheme or violates a type guard),
* dependency errors (malformed or violated attribute/functional dependencies),
* constraint violations raised by the engine during DML,
* algebra/optimizer errors (ill-formed expressions),
* catalog errors (unknown or duplicate relations).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SchemeError(ReproError):
    """A flexible scheme is structurally invalid.

    Examples: cardinality bounds out of range, duplicate attributes across
    components, an empty component set with a positive lower bound.
    """


class TupleError(ReproError):
    """A tuple is malformed (e.g. accessing an attribute it is not defined on)."""


class TypeCheckError(ReproError):
    """A tuple does not conform to a scheme, a domain, or a record type."""


class TypeGuardError(TypeCheckError):
    """A type guard failed: a required attribute is absent from a tuple."""


class DomainError(TypeCheckError):
    """A value is outside the domain declared for its attribute."""


class DependencyError(ReproError):
    """A dependency (AD, EAD or FD) is syntactically malformed."""


class DependencyViolation(ReproError):
    """An instance violates a declared attribute or functional dependency."""

    def __init__(self, dependency, message=None, offending=None):
        self.dependency = dependency
        self.offending = offending
        if message is None:
            message = "dependency violated: {!r}".format(dependency)
        super().__init__(message)


class ConstraintViolation(ReproError):
    """The engine rejected a DML statement because a constraint would be violated."""


class KeyViolation(ConstraintViolation):
    """A primary-key or uniqueness constraint would be violated."""


class AlgebraError(ReproError):
    """An algebra expression is ill-formed (wrong arity, unknown attribute, ...)."""


class PredicateError(AlgebraError):
    """A selection predicate references attributes or values incorrectly."""


class OptimizerError(ReproError):
    """The optimizer was asked to rewrite an expression it cannot handle."""


class CatalogError(ReproError):
    """Catalog-level problem: unknown relation, duplicate registration, ..."""


class DecompositionError(ReproError):
    """A decomposition or its restoration is not applicable to the given scheme."""


class EmbeddingError(ReproError):
    """A flexible scheme cannot be translated into a variant-record type."""


class DerivationError(ReproError):
    """The axiom-system derivation engine was used incorrectly."""


class GovernorError(ReproError):
    """Base of the resource-governor taxonomy (see :mod:`repro.governor`)."""


class QueryCancelled(GovernorError):
    """The query was cancelled cooperatively at an operator boundary."""

    def __init__(self, reason: str = "query cancelled"):
        super().__init__(reason)
        self.reason = reason


class QueryTimeout(QueryCancelled):
    """A cancellation whose initiator is the clock: the deadline expired.

    Subclasses :class:`QueryCancelled` so one unwind path covers both;
    handlers that care about the distinction catch the timeout first.
    """

    def __init__(self, reason: str = "query deadline exceeded",
                 timeout: "float | None" = None):
        super().__init__(reason)
        self.timeout = timeout


class MemoryBudgetExceeded(GovernorError):
    """A stateful operator outgrew the query's memory budget and could not
    (or was not allowed to) spill."""

    def __init__(self, operator: str, held_bytes: int, budget_bytes: int):
        super().__init__(
            "operator {} holds ~{} bytes against a budget of {} bytes "
            "and cannot spill".format(operator, held_bytes, budget_bytes))
        self.operator = operator
        self.held_bytes = held_bytes
        self.budget_bytes = budget_bytes


class SpillError(GovernorError):
    """A spill segment on disk is malformed (torn write, CRC mismatch)."""


class AdmissionRejected(GovernorError):
    """The admission controller shed this query (queue full or wait timed out)."""


class CircuitOpen(AdmissionRejected):
    """The circuit breaker is open after too many consecutive failures."""
