"""Heterogeneous tuples.

A tuple of a flexible relation is a mapping from *some* attribute set to values; two
tuples of the same relation may be defined on different attribute sets.  The paper
assumes a function ``attr(t)`` yielding the attribute set a tuple is defined on, and
uses ``t[X]`` both for single-attribute access and for the restriction of ``t`` to an
attribute set.  :class:`FlexTuple` provides exactly that interface.

Tuples are immutable and hashable so that instances of flexible relations can be
ordinary Python sets, mirroring the paper's set-of-tuples semantics (duplicate
elimination under projection and union comes for free).
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import TupleError
from repro.model.attributes import Attribute, AttributeSet, attrset


class FlexTuple:
    """An immutable heterogeneous tuple.

    Construct it from a mapping or from keyword arguments::

        t = FlexTuple(jobtype="secretary", salary=4200.0)
        t = FlexTuple({"jobtype": "secretary", "salary": 4200.0})

    ``attr(t)`` from the paper is :attr:`attributes`; ``t[X]`` is implemented by
    ``__getitem__`` (single attribute → value) and :meth:`project` (attribute set →
    sub-tuple).
    """

    __slots__ = ("_values", "_attrs", "_hash")

    def __init__(self, values: Mapping = None, **kwargs):
        merged: Dict[str, object] = {}
        if values is not None:
            for key, value in dict(values).items():
                merged[_attr_name(key)] = value
        for key, value in kwargs.items():
            if key in merged:
                raise TupleError("attribute {!r} given twice".format(key))
            merged[key] = value
        self._values: Dict[str, object] = merged
        self._attrs = None
        self._hash = hash(frozenset(self._values.items()))

    @classmethod
    def from_parts(cls, values: Dict[str, object], hash_: int = None) -> "FlexTuple":
        """Fast construction from an already-normalized value dict.

        The batch execution layer (:mod:`repro.model.batches`) builds merged /
        transformed value dicts column-at-a-time and materializes tuples only
        when they cross into row-mode code; this constructor skips the
        per-attribute normalization of ``__init__`` and reuses a precomputed
        hash when the caller already derived one (``hash(frozenset(items))`` —
        the exact hash ``__init__`` computes).  ``values`` is adopted by
        reference and must never be mutated afterwards, and every key must be a
        plain attribute-name string.
        """
        self = cls.__new__(cls)
        self._values = values
        self._attrs = None
        self._hash = hash(frozenset(values.items())) if hash_ is None else hash_
        return self

    # -- the paper's interface ------------------------------------------------------

    @property
    def attributes(self) -> AttributeSet:
        """``attr(t)`` — the attribute set this tuple is defined on.

        Built lazily: result tuples that are only hashed, compared or read by
        value (the vast majority in the execution engine) never pay for the
        attribute-set object.
        """
        attrs = self._attrs
        if attrs is None:
            attrs = AttributeSet(self._values.keys())
            self._attrs = attrs
        return attrs

    def is_defined_on(self, attributes) -> bool:
        """``True`` when every attribute of ``attributes`` is present (a type guard)."""
        values = self._values
        return all(a.name in values for a in attrset(attributes))

    def project(self, attributes) -> "FlexTuple":
        """``t[X]`` — restrict the tuple to the attribute set ``X``.

        Every requested attribute must be present; use :meth:`project_existing` for
        the partial restriction used by outer operators.
        """
        attributes = attrset(attributes)
        missing = attributes - self.attributes
        if missing:
            raise TupleError(
                "tuple is not defined on {}; defined on {}".format(missing, self.attributes)
            )
        return FlexTuple({a.name: self._values[a.name] for a in attributes})

    def project_existing(self, attributes) -> "FlexTuple":
        """Restrict to the attributes of ``X`` that the tuple actually possesses."""
        attributes = attrset(attributes) & self.attributes
        return FlexTuple({a.name: self._values[a.name] for a in attributes})

    def agrees_with(self, other: "FlexTuple", attributes) -> bool:
        """``t1[X] = t2[X]`` — both defined on ``X`` and equal there."""
        attributes = attrset(attributes)
        if not (self.is_defined_on(attributes) and other.is_defined_on(attributes)):
            return False
        return all(self[a] == other[a] for a in attributes)

    # -- mapping protocol -------------------------------------------------------------

    def __getitem__(self, attribute):
        name = _attr_name(attribute)
        try:
            return self._values[name]
        except KeyError:
            raise TupleError(
                "tuple is not defined on attribute {!r} (defined on {})".format(
                    name, self.attributes
                )
            ) from None

    def get(self, attribute, default=None):
        """Value of ``attribute`` or ``default`` when the tuple lacks it."""
        return self._values.get(_attr_name(attribute), default)

    def __contains__(self, attribute) -> bool:
        return _attr_name(attribute) in self._values

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self._values)

    def items(self) -> Iterator[Tuple[str, object]]:
        """Iterate ``(attribute name, value)`` pairs in sorted attribute order."""
        for attribute in self.attributes:
            yield attribute.name, self._values[attribute.name]

    def as_dict(self) -> Dict[str, object]:
        """A plain ``dict`` copy of the tuple."""
        return dict(self._values)

    # -- derivation of new tuples -------------------------------------------------------

    def extend(self, **new_values) -> "FlexTuple":
        """Return a copy extended by the given attributes (the ε operator on tuples).

        Extending with an attribute the tuple already possesses is an error: the
        extension operator of Section 4.3 adds a *new* tag attribute.
        """
        for key in new_values:
            if key in self._values:
                raise TupleError("attribute {!r} already present".format(key))
        merged = dict(self._values)
        merged.update(new_values)
        return FlexTuple(merged)

    def replace(self, **new_values) -> "FlexTuple":
        """Return a copy with existing attribute values replaced."""
        for key in new_values:
            if key not in self._values:
                raise TupleError("attribute {!r} not present; use extend()".format(key))
        merged = dict(self._values)
        merged.update(new_values)
        return FlexTuple(merged)

    def remove(self, attributes) -> "FlexTuple":
        """Return a copy without the given attributes (must all be present)."""
        attributes = attrset(attributes)
        return self.project(self.attributes - attributes)

    def merge(self, other: "FlexTuple") -> "FlexTuple":
        """Combine two tuples defined on disjoint or agreeing attribute sets.

        Used by the cartesian product and the multiway join; overlapping attributes
        must agree, otherwise the merge is rejected.
        """
        merged = dict(self._values)
        for name, value in other.items():
            if name in merged and merged[name] != value:
                raise TupleError(
                    "cannot merge tuples: they disagree on attribute {!r}".format(name)
                )
            merged[name] = value
        return FlexTuple(merged)

    # -- equality -------------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, FlexTuple):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == {_attr_name(k): v for k, v in other.items()}
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join("{}: {!r}".format(name, value) for name, value in self.items())
        return "<{}>".format(inner)


def _attr_name(attribute) -> str:
    """Normalize an attribute or attribute name into a plain string key."""
    if isinstance(attribute, Attribute):
        return attribute.name
    if isinstance(attribute, str):
        return attribute
    raise TupleError("cannot interpret {!r} as an attribute".format(attribute))
