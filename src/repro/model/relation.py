"""Flexible relations.

A flexible relation ``FR = <FS, inst>`` pairs a flexible scheme with a finite set of
tuples drawn from ``dom(FS)`` (Section 2.1).  The class below keeps the instance as
an immutable-by-convention Python set of :class:`~repro.model.tuples.FlexTuple`
objects, validates tuples against the scheme (and optional attribute domains) on
insertion, and offers the satisfaction checks that the dependency machinery and the
benchmarks build upon.

Constraint *enforcement* with error reporting, keys, and indexes lives in
:mod:`repro.engine`; this module is the bare mathematical object.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.errors import TypeCheckError
from repro.model.attributes import AttributeSet, attrset
from repro.model.domains import Domain
from repro.model.scheme import FlexibleScheme
from repro.model.tuples import FlexTuple


class FlexibleRelation:
    """A flexible scheme together with an instance.

    Parameters
    ----------
    scheme:
        The flexible scheme the relation is defined over.
    tuples:
        Optional initial instance; each element may be a :class:`FlexTuple` or a
        plain mapping.
    domains:
        Optional mapping from attribute name to :class:`~repro.model.domains.Domain`;
        values are checked against it on insertion.
    name:
        Optional relation name used for display and by the catalog.
    validate:
        When ``False`` the scheme/domain checks on insertion are skipped.  This is
        the switch used by the type-checking benchmarks to compare checked and
        unchecked ingestion.
    """

    def __init__(
        self,
        scheme: FlexibleScheme,
        tuples: Optional[Iterable] = None,
        domains: Optional[Dict[str, Domain]] = None,
        name: Optional[str] = None,
        validate: bool = True,
    ):
        self._scheme = scheme
        self._domains: Dict[str, Domain] = dict(domains or {})
        self.name = name
        self.validate = validate
        self._tuples: Set[FlexTuple] = set()
        if tuples is not None:
            for item in tuples:
                self.insert(item)

    # -- accessors -------------------------------------------------------------------

    @property
    def scheme(self) -> FlexibleScheme:
        """``scheme(FR)``."""
        return self._scheme

    @property
    def tuples(self) -> Set[FlexTuple]:
        """``inst(FR)`` — the current instance (a set of tuples)."""
        return set(self._tuples)

    @property
    def domains(self) -> Dict[str, Domain]:
        """Declared attribute domains (may be empty)."""
        return dict(self._domains)

    @property
    def attributes(self) -> AttributeSet:
        """All attributes mentioned in the scheme."""
        return self._scheme.attributes

    def __iter__(self) -> Iterator[FlexTuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, item) -> bool:
        return _as_tuple(item) in self._tuples

    # -- mutation ----------------------------------------------------------------------

    def insert(self, item) -> FlexTuple:
        """Insert a tuple after validating it against the scheme and the domains.

        Returns the inserted :class:`FlexTuple`.  Raises
        :class:`~repro.errors.TypeCheckError` when the tuple's attribute combination
        is not admitted by the scheme, or a value is outside its declared domain.
        """
        tup = _as_tuple(item)
        if self.validate:
            self.check_tuple(tup)
        self._tuples.add(tup)
        return tup

    def insert_many(self, items: Iterable) -> List[FlexTuple]:
        """Insert several tuples; returns the inserted tuples in input order."""
        return [self.insert(item) for item in items]

    def delete(self, item) -> bool:
        """Remove a tuple; returns ``True`` when it was present."""
        tup = _as_tuple(item)
        if tup in self._tuples:
            self._tuples.remove(tup)
            return True
        return False

    def clear(self) -> None:
        """Remove every tuple."""
        self._tuples.clear()

    # -- validation -------------------------------------------------------------------------

    def check_tuple(self, tup: FlexTuple) -> FlexTuple:
        """Validate a single tuple against the scheme and the attribute domains."""
        if not self._scheme.admits(tup.attributes):
            raise TypeCheckError(
                "attribute combination {} is not admitted by scheme {!r}".format(
                    tup.attributes, self._scheme
                )
            )
        for name, value in tup.items():
            domain = self._domains.get(name)
            if domain is not None:
                domain.validate(value, attribute=name)
        return tup

    def admits(self, item) -> bool:
        """``True`` when the tuple's attribute combination is in ``dnf(scheme)``
        and its values respect the declared domains."""
        tup = _as_tuple(item)
        try:
            self.check_tuple(tup)
        except TypeCheckError:
            return False
        return True

    # -- dependency satisfaction ---------------------------------------------------------------

    def satisfies(self, dependency) -> bool:
        """``True`` when the instance satisfies the given dependency.

        Any object with a ``holds_in(relation)`` method qualifies; this covers
        attribute dependencies, explicit attribute dependencies and functional
        dependencies from :mod:`repro.core`.
        """
        return bool(dependency.holds_in(self))

    def satisfies_all(self, dependencies: Iterable) -> bool:
        """``True`` when every dependency of the iterable holds in the instance."""
        return all(self.satisfies(d) for d in dependencies)

    def violations(self, dependencies: Iterable) -> List:
        """Return the dependencies of the iterable that the instance violates."""
        return [d for d in dependencies if not self.satisfies(d)]

    # -- derivation --------------------------------------------------------------------------------

    def copy(self, name: Optional[str] = None, validate: Optional[bool] = None) -> "FlexibleRelation":
        """A shallow copy with the same scheme, domains and tuples."""
        clone = FlexibleRelation(
            self._scheme,
            domains=self._domains,
            name=self.name if name is None else name,
            validate=self.validate if validate is None else validate,
        )
        clone._tuples = set(self._tuples)
        return clone

    def with_scheme(self, scheme: FlexibleScheme, tuples: Iterable, name: Optional[str] = None,
                    domains: Optional[Dict[str, Domain]] = None) -> "FlexibleRelation":
        """Build a new relation that inherits this relation's domains by default."""
        return FlexibleRelation(
            scheme,
            tuples=tuples,
            domains=self._domains if domains is None else domains,
            name=name,
            validate=False,
        )

    def attribute_combinations(self) -> Set[AttributeSet]:
        """The set ``{ attr(t) | t ∈ inst(FR) }`` actually occurring in the instance."""
        return {t.attributes for t in self._tuples}

    def project_instance(self, attributes) -> Set[FlexTuple]:
        """Project every tuple onto the attributes it possesses from ``X``."""
        attributes = attrset(attributes)
        return {t.project_existing(attributes) for t in self._tuples}

    def __repr__(self) -> str:
        label = self.name or "FlexibleRelation"
        return "{}(scheme={!r}, tuples={})".format(label, self._scheme, len(self._tuples))


def _as_tuple(item) -> FlexTuple:
    if isinstance(item, FlexTuple):
        return item
    return FlexTuple(item)
