"""Flexible-relation data model substrate.

This package implements Section 2.1 of the paper: the universe of attributes, typed
domains, heterogeneous tuples, the generic flexible-scheme constructor
``<at-least, at-most, {components}>`` with its disjunctive-normal-form unfolding, and
flexible relations (a flexible scheme paired with a finite set of tuples drawn from
the scheme's domain).
"""

from repro.model.attributes import Attribute, AttributeSet, attrset
from repro.model.batches import MISSING, TupleBatch, mask_indices
from repro.model.domains import (
    AnyDomain,
    BoolDomain,
    Domain,
    EnumDomain,
    FloatDomain,
    IntDomain,
    RangeDomain,
    StringDomain,
)
from repro.model.tuples import FlexTuple
from repro.model.scheme import FlexibleScheme, SchemeComponent, relational_scheme
from repro.model.relation import FlexibleRelation

__all__ = [
    "Attribute",
    "AttributeSet",
    "attrset",
    "Domain",
    "AnyDomain",
    "BoolDomain",
    "EnumDomain",
    "FloatDomain",
    "IntDomain",
    "RangeDomain",
    "StringDomain",
    "FlexTuple",
    "MISSING",
    "TupleBatch",
    "mask_indices",
    "FlexibleScheme",
    "SchemeComponent",
    "relational_scheme",
    "FlexibleRelation",
]
