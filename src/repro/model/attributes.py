"""Attributes and attribute sets.

The paper works over a universe of attributes (denoted by the symbol "U" / "Ω" in the
text).  Attributes are plain named objects; attribute *sets* occur everywhere (scheme
components, the left and right sides of dependencies, the defined-on set ``attr(t)``
of a tuple) and the paper freely treats a single attribute as a singleton set.  This
module provides:

* :class:`Attribute` — an interned, hashable attribute name,
* :class:`AttributeSet` — an immutable, ordered-for-display set of attributes with
  the usual set algebra, and
* :func:`attrset` — a permissive constructor that accepts strings, attributes,
  iterables or ``None`` and normalizes them into an :class:`AttributeSet`,
  mirroring the paper's convention of "treat attributes as singleton attribute sets
  when sets of attributes are expected".
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Union

from repro.errors import ReproError


class Attribute:
    """A named attribute of the universe.

    Attributes compare and hash by name, so two ``Attribute("salary")`` objects are
    interchangeable.  They sort alphabetically, which gives deterministic display
    order for schemes, dependencies and tuples.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str):
        if not isinstance(name, str):
            raise ReproError("attribute name must be a string, got {!r}".format(name))
        if not name:
            raise ReproError("attribute name must be non-empty")
        self._name = name

    @property
    def name(self) -> str:
        """The attribute's name."""
        return self._name

    def __eq__(self, other) -> bool:
        if isinstance(other, Attribute):
            return self._name == other._name
        if isinstance(other, str):
            return self._name == other
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, Attribute):
            return self._name < other._name
        if isinstance(other, str):
            return self._name < other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._name)

    def __repr__(self) -> str:
        return "Attribute({!r})".format(self._name)

    def __str__(self) -> str:
        return self._name


AttributeLike = Union[str, Attribute]
AttributesLike = Union[None, AttributeLike, Iterable[AttributeLike], "AttributeSet"]


def _as_attribute(value: AttributeLike) -> Attribute:
    """Coerce a string or attribute into an :class:`Attribute`."""
    if isinstance(value, Attribute):
        return value
    if isinstance(value, str):
        return Attribute(value)
    raise ReproError("cannot interpret {!r} as an attribute".format(value))


class AttributeSet:
    """An immutable set of attributes with set algebra and stable display order.

    The class intentionally mirrors ``frozenset`` (it supports ``in``, iteration,
    ``len``, union/intersection/difference, subset tests) but renders as the familiar
    juxtaposition notation of dependency theory, e.g. ``ABC`` for small single-letter
    attributes and ``{salary, jobtype}`` otherwise.
    """

    __slots__ = ("_attrs",)

    def __init__(self, attributes: AttributesLike = None):
        if attributes is None:
            items: Iterable[AttributeLike] = ()
        elif isinstance(attributes, (str, Attribute)):
            items = (attributes,)
        elif isinstance(attributes, AttributeSet):
            items = attributes._attrs
        else:
            items = attributes
        self._attrs: FrozenSet[Attribute] = frozenset(_as_attribute(a) for a in items)

    # -- basic container protocol -------------------------------------------------

    def __contains__(self, item) -> bool:
        try:
            return _as_attribute(item) in self._attrs
        except ReproError:
            return False

    def __iter__(self) -> Iterator[Attribute]:
        return iter(sorted(self._attrs))

    def __len__(self) -> int:
        return len(self._attrs)

    def __bool__(self) -> bool:
        return bool(self._attrs)

    def __eq__(self, other) -> bool:
        if isinstance(other, AttributeSet):
            return self._attrs == other._attrs
        if isinstance(other, (set, frozenset)):
            return self._attrs == AttributeSet(other)._attrs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._attrs)

    def __le__(self, other) -> bool:
        return self.issubset(other)

    def __lt__(self, other) -> bool:
        other = attrset(other)
        return self.issubset(other) and self != other

    def __ge__(self, other) -> bool:
        return attrset(other).issubset(self)

    def __gt__(self, other) -> bool:
        other = attrset(other)
        return other.issubset(self) and self != other

    # -- set algebra ---------------------------------------------------------------

    def union(self, *others: AttributesLike) -> "AttributeSet":
        """Return the union of this set with every argument."""
        result = set(self._attrs)
        for other in others:
            result |= attrset(other)._attrs
        return AttributeSet(result)

    def intersection(self, other: AttributesLike) -> "AttributeSet":
        """Return the intersection with ``other``."""
        return AttributeSet(self._attrs & attrset(other)._attrs)

    def difference(self, other: AttributesLike) -> "AttributeSet":
        """Return the attributes of this set not contained in ``other``."""
        return AttributeSet(self._attrs - attrset(other)._attrs)

    def symmetric_difference(self, other: AttributesLike) -> "AttributeSet":
        """Return attributes contained in exactly one of the two sets."""
        return AttributeSet(self._attrs ^ attrset(other)._attrs)

    def __or__(self, other: AttributesLike) -> "AttributeSet":
        return self.union(other)

    def __and__(self, other: AttributesLike) -> "AttributeSet":
        return self.intersection(other)

    def __sub__(self, other: AttributesLike) -> "AttributeSet":
        return self.difference(other)

    def __xor__(self, other: AttributesLike) -> "AttributeSet":
        return self.symmetric_difference(other)

    def issubset(self, other: AttributesLike) -> bool:
        """``True`` if every attribute of this set is in ``other``."""
        return self._attrs <= attrset(other)._attrs

    def issuperset(self, other: AttributesLike) -> bool:
        """``True`` if this set contains every attribute of ``other``."""
        return self._attrs >= attrset(other)._attrs

    def isdisjoint(self, other: AttributesLike) -> bool:
        """``True`` if this set shares no attribute with ``other``."""
        return self._attrs.isdisjoint(attrset(other)._attrs)

    # -- convenience ----------------------------------------------------------------

    @property
    def names(self) -> tuple:
        """Sorted tuple of attribute names."""
        return tuple(a.name for a in self)

    def as_frozenset(self) -> FrozenSet[Attribute]:
        """The underlying frozenset of :class:`Attribute` objects."""
        return self._attrs

    def __repr__(self) -> str:
        return "AttributeSet({})".format(", ".join(repr(a.name) for a in self))

    def __str__(self) -> str:
        if not self._attrs:
            return "∅"
        names = self.names
        if all(len(n) == 1 for n in names):
            return "".join(names)
        return "{" + ", ".join(names) + "}"


def attrset(attributes: AttributesLike = None) -> AttributeSet:
    """Normalize ``attributes`` into an :class:`AttributeSet`.

    Accepts ``None`` (empty set), a single attribute or attribute name, an iterable
    of either, or an existing :class:`AttributeSet` (returned unchanged).
    """
    if isinstance(attributes, AttributeSet):
        return attributes
    return AttributeSet(attributes)
