"""Typed domains for attributes.

The relational model (and the model of flexible relations) maps attributes to values
of given atomic domains.  Domains serve two purposes in this library:

* *membership checking* during type checking and DML — ``domain.contains(value)``;
* *enumeration / sampling* for the semantic-implication machinery, the workload
  generators and the property tests — finite domains can list their values, infinite
  domains can produce representative samples.

The paper's examples rely on enumerated domains (``jobtype`` over
``{'secretary', 'software engineer', 'salesman'}``), numeric domains (``salary``),
and free string domains (names, products).  The subtype derivation of Section 3.2
restricts the domain of the determining attributes in each subtype, which is what
:meth:`Domain.restrict` models.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.errors import DomainError, ReproError


class Domain:
    """Abstract base class of all domains.

    Subclasses implement :meth:`contains`; finite domains additionally implement
    :meth:`values` and report ``is_finite = True``.
    """

    #: human-readable name of the domain, used in reprs and error messages
    name: str = "domain"
    #: whether :meth:`values` enumerates the complete domain
    is_finite: bool = False

    def contains(self, value) -> bool:
        """Return ``True`` when ``value`` belongs to the domain."""
        raise NotImplementedError

    def validate(self, value, attribute=None):
        """Raise :class:`DomainError` when ``value`` is not in the domain."""
        if not self.contains(value):
            where = " for attribute {}".format(attribute) if attribute is not None else ""
            raise DomainError(
                "value {!r} is not in domain {}{}".format(value, self.name, where)
            )
        return value

    def values(self) -> Iterator:
        """Iterate over the values of a finite domain."""
        raise NotImplementedError("{} is not enumerable".format(self.name))

    def sample(self, count: int, rng) -> List:
        """Return ``count`` representative values drawn with random generator ``rng``."""
        if self.is_finite:
            pool = list(self.values())
            return [pool[rng.randrange(len(pool))] for _ in range(count)]
        raise NotImplementedError("{} cannot be sampled".format(self.name))

    def restrict(self, allowed: Iterable) -> "EnumDomain":
        """Return the restriction of this domain to the given values.

        Used when deriving subtypes from an attribute dependency: the subtype
        restricts the domain of the determining attributes to the variant's value
        set ``V_i`` (Section 3.2 of the paper).  Values outside the original domain
        are rejected.
        """
        allowed = list(allowed)
        for value in allowed:
            if not self.contains(value):
                raise DomainError(
                    "cannot restrict {} to {!r}: value not in domain".format(self.name, value)
                )
        return EnumDomain(allowed, name="{}|restricted".format(self.name))

    def __contains__(self, value) -> bool:
        return self.contains(value)

    def __repr__(self) -> str:
        return "{}()".format(type(self).__name__)


class AnyDomain(Domain):
    """The unrestricted domain: every Python value is a member.

    This is the default domain when an attribute is declared without one, matching
    the paper's practice of leaving most attribute domains unspecified.
    """

    name = "any"

    def contains(self, value) -> bool:
        return True

    def sample(self, count: int, rng) -> List:
        return [rng.randrange(1_000_000) for _ in range(count)]


class IntDomain(Domain):
    """The domain of integers (bools excluded, mirroring SQL's separation)."""

    name = "int"

    def contains(self, value) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    def sample(self, count: int, rng) -> List:
        return [rng.randrange(-10_000, 10_000) for _ in range(count)]


class FloatDomain(Domain):
    """The domain of real numbers (accepts ints and floats)."""

    name = "float"

    def contains(self, value) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def sample(self, count: int, rng) -> List:
        return [round(rng.uniform(-10_000.0, 10_000.0), 2) for _ in range(count)]


class StringDomain(Domain):
    """The domain of character strings, optionally bounded in length."""

    name = "string"

    def __init__(self, max_length: Optional[int] = None):
        if max_length is not None and max_length < 0:
            raise ReproError("max_length must be non-negative")
        self.max_length = max_length

    def contains(self, value) -> bool:
        if not isinstance(value, str):
            return False
        if self.max_length is not None and len(value) > self.max_length:
            return False
        return True

    def sample(self, count: int, rng) -> List:
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        limit = self.max_length if self.max_length is not None else 8
        limit = max(1, min(limit, 12))
        result = []
        for _ in range(count):
            length = rng.randrange(1, limit + 1)
            result.append("".join(alphabet[rng.randrange(26)] for _ in range(length)))
        return result

    def __repr__(self) -> str:
        return "StringDomain(max_length={!r})".format(self.max_length)


class BoolDomain(Domain):
    """The two-valued boolean domain."""

    name = "bool"
    is_finite = True

    def contains(self, value) -> bool:
        return isinstance(value, bool)

    def values(self) -> Iterator:
        return iter((False, True))


class EnumDomain(Domain):
    """A finite, explicitly enumerated domain.

    The workhorse of the paper's examples (``jobtype``, ``sex``, ``marital-status``).
    Values keep their declaration order for deterministic display and sampling.
    """

    is_finite = True

    def __init__(self, values: Sequence, name: str = "enum"):
        values = list(values)
        if not values:
            raise ReproError("an enumerated domain needs at least one value")
        seen = []
        for value in values:
            if value in seen:
                raise ReproError("duplicate value {!r} in enumerated domain".format(value))
            seen.append(value)
        self._values = tuple(values)
        self.name = name

    def contains(self, value) -> bool:
        return value in self._values

    def values(self) -> Iterator:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return "EnumDomain({!r}, name={!r})".format(list(self._values), self.name)


class RangeDomain(Domain):
    """An inclusive numeric interval ``[low, high]``.

    Useful for attributes such as ``salary`` or ``zip-code`` where workloads need a
    bounded value space; the interval over the integers is finite and enumerable when
    ``integral=True``.
    """

    def __init__(self, low, high, integral: bool = False, name: str = "range"):
        if low > high:
            raise ReproError("range domain requires low <= high")
        self.low = low
        self.high = high
        self.integral = integral
        self.name = name
        self.is_finite = bool(integral)

    def contains(self, value) -> bool:
        if isinstance(value, bool):
            return False
        if self.integral and not isinstance(value, int):
            return False
        if not isinstance(value, (int, float)):
            return False
        return self.low <= value <= self.high

    def values(self) -> Iterator:
        if not self.integral:
            raise NotImplementedError("non-integral range is not enumerable")
        return iter(range(int(self.low), int(self.high) + 1))

    def sample(self, count: int, rng) -> List:
        if self.integral:
            return [rng.randrange(int(self.low), int(self.high) + 1) for _ in range(count)]
        return [round(rng.uniform(self.low, self.high), 2) for _ in range(count)]

    def __repr__(self) -> str:
        return "RangeDomain({!r}, {!r}, integral={!r})".format(self.low, self.high, self.integral)


def cross_product(domains: Sequence[Domain], limit: Optional[int] = None) -> Iterator[tuple]:
    """Iterate over tuples of the cartesian product of finite domains.

    Used to enumerate ``Tup(X)`` for small determining attribute sets, e.g. when
    checking whether an explicit attribute dependency is *total*
    (``U Vi = Tup(X)``, Section 3.1).  ``limit`` caps the enumeration to guard
    against combinatorial blow-up.
    """
    for domain in domains:
        if not domain.is_finite:
            raise DomainError(
                "cannot enumerate Tup(X): domain {} is not finite".format(domain.name)
            )
    iterator = itertools.product(*(tuple(d.values()) for d in domains))
    if limit is None:
        return iterator
    return itertools.islice(iterator, limit)
