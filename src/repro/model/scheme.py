"""Flexible schemes — the generic scheme constructor of the paper.

A flexible scheme is a three-tuple ``<at-least, at-most, components>`` where every
component is either a single attribute or, recursively, another flexible scheme
(Section 2.1).  The cardinality bounds say how many of the components have at least
to be taken and how many are allowed at most.  The standard constructs are:

* a traditional relational scheme over ``A1..An`` — ``<n, n, {A1..An}>``,
* a disjoint union (exactly one variant) — ``<1, 1, {A1..An}>``,
* a non-disjoint union (at least one, possibly all) — ``<1, n, {A1..An}>``,
* optional attributes — ``<0, 1, {A}>`` nested inside an enclosing scheme.

The *disjunctive normal form* ``dnf(FS)`` unfolds the scheme into the set of allowed
attribute combinations; ``dom(FS)`` is the union of ``Tup(X)`` over those
combinations.  Unfolding can be exponential in the number of optional components,
which is why :meth:`FlexibleScheme.admits` decides membership of an attribute set in
``dnf(FS)`` *without* materializing the DNF (the lazy path ablated in experiment E1).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple, Union

from repro.errors import SchemeError
from repro.model.attributes import Attribute, AttributeSet, attrset

#: a component of a flexible scheme: a single attribute or a nested scheme
SchemeComponent = Union[Attribute, "FlexibleScheme"]


class FlexibleScheme:
    """The generic scheme constructor ``<at_least, at_most, {components}>``.

    ``components`` may contain attribute names (strings), :class:`Attribute` objects
    or nested :class:`FlexibleScheme` instances.  The attribute sets of distinct
    components must be disjoint — an attribute may occur only once in a scheme.
    """

    __slots__ = ("_at_least", "_at_most", "_components", "_attributes")

    def __init__(self, at_least: int, at_most: int, components: Iterable):
        components = tuple(_normalize_component(c) for c in components)
        if not components:
            raise SchemeError("a flexible scheme needs at least one component")
        if not (isinstance(at_least, int) and isinstance(at_most, int)):
            raise SchemeError("cardinality bounds must be integers")
        if at_least < 0:
            raise SchemeError("at-least bound must be non-negative")
        if at_most < at_least:
            raise SchemeError(
                "at-most bound ({}) must not be smaller than at-least bound ({})".format(
                    at_most, at_least
                )
            )
        if at_most > len(components):
            raise SchemeError(
                "at-most bound ({}) exceeds the number of components ({})".format(
                    at_most, len(components)
                )
            )
        seen = AttributeSet()
        for component in components:
            component_attrs = _component_attributes(component)
            if not seen.isdisjoint(component_attrs):
                raise SchemeError(
                    "attribute(s) {} occur in more than one component".format(
                        seen & component_attrs
                    )
                )
            seen = seen | component_attrs
        self._at_least = at_least
        self._at_most = at_most
        self._components = components
        self._attributes = seen

    # -- construction helpers ----------------------------------------------------------

    @classmethod
    def relational(cls, attributes: Iterable) -> "FlexibleScheme":
        """``<n, n, {A1..An}>`` — the homogeneous relational scheme."""
        attributes = list(attrset(attributes))
        return cls(len(attributes), len(attributes), attributes)

    @classmethod
    def disjoint_union(cls, components: Iterable) -> "FlexibleScheme":
        """``<1, 1, {...}>`` — exactly one of the components."""
        return cls(1, 1, list(components))

    @classmethod
    def non_disjoint_union(cls, components: Iterable) -> "FlexibleScheme":
        """``<1, n, {...}>`` — at least one, possibly all components."""
        components = list(components)
        return cls(1, len(components), components)

    @classmethod
    def optional(cls, components: Iterable) -> "FlexibleScheme":
        """``<0, n, {...}>`` — any number of the components, including none."""
        components = list(components)
        return cls(0, len(components), components)

    # -- basic accessors ------------------------------------------------------------------

    @property
    def at_least(self) -> int:
        """Lower cardinality bound."""
        return self._at_least

    @property
    def at_most(self) -> int:
        """Upper cardinality bound."""
        return self._at_most

    @property
    def components(self) -> Tuple[SchemeComponent, ...]:
        """The components in declaration order."""
        return self._components

    @property
    def attributes(self) -> AttributeSet:
        """``attr(FS)`` — every attribute mentioned anywhere in the scheme."""
        return self._attributes

    @property
    def is_relational(self) -> bool:
        """``True`` for a flat ``<n, n, {attributes}>`` scheme (no variants)."""
        return (
            self._at_least == self._at_most == len(self._components)
            and all(isinstance(c, Attribute) for c in self._components)
        )

    # -- DNF unfolding -----------------------------------------------------------------------

    def dnf(self) -> Set[AttributeSet]:
        """``dnf(FS)`` — the set of allowed attribute combinations.

        The empty attribute set is excluded unless the scheme genuinely admits a
        tuple with no attributes (``at_least == 0`` everywhere), matching the paper's
        examples where every legal tuple carries at least the unconditioned
        attributes.
        """
        combos = {frozenset(c) for c in self._dnf_frozensets()}
        return {AttributeSet(c) for c in combos}

    def _dnf_frozensets(self) -> Set[FrozenSet[Attribute]]:
        per_component: List[Set[FrozenSet[Attribute]]] = []
        for component in self._components:
            if isinstance(component, Attribute):
                per_component.append({frozenset((component,))})
            else:
                # A nested scheme that admits the empty attribute set may be "taken"
                # without contributing any attribute; keeping the empty option here
                # keeps dnf() consistent with the lazy admits() test.
                per_component.append(component._dnf_frozensets())
        results: Set[FrozenSet[Attribute]] = set()
        n = len(per_component)
        for mask in range(1 << n):
            taken = [i for i in range(n) if mask & (1 << i)]
            if not (self._at_least <= len(taken) <= self._at_most):
                continue
            partial: Set[FrozenSet[Attribute]] = {frozenset()}
            for index in taken:
                partial = {
                    existing | option
                    for existing in partial
                    for option in per_component[index]
                }
            results |= partial
        return results

    def count_variants(self) -> int:
        """Number of attribute combinations in ``dnf(FS)``."""
        return len(self._dnf_frozensets())

    # -- lazy membership ----------------------------------------------------------------------

    def admits(self, attributes) -> bool:
        """Decide ``X ∈ dnf(FS)`` without materializing the DNF.

        The test assigns to every component the portion of ``X`` falling into its
        attribute set (components are attribute-disjoint, so the assignment is
        unique), checks that portion recursively, and finally verifies that the
        number of taken components can satisfy the cardinality bounds.
        """
        attributes = attrset(attributes)
        if not attributes.issubset(self._attributes):
            return False
        feasible_low = 0
        feasible_high = 0
        for component in self._components:
            component_attrs = _component_attributes(component)
            portion = attributes & component_attrs
            if not portion:
                # The component is not taken.  (A nested scheme that admits the
                # empty set contributes the same attributes either way, so counting
                # it as "not taken" is the canonical reading.)
                continue
            if isinstance(component, Attribute):
                taken_ok = portion == AttributeSet(component)
            else:
                taken_ok = component.admits(portion)
            if not taken_ok:
                return False
            feasible_low += 1
            feasible_high += 1
        # Components with an empty portion may optionally count as "taken" when they
        # admit the empty attribute set (at_least == 0); this widens the upper bound.
        for component in self._components:
            component_attrs = _component_attributes(component)
            portion = attributes & component_attrs
            if portion:
                continue
            if isinstance(component, FlexibleScheme) and component._admits_empty():
                feasible_high += 1
        return feasible_low <= self._at_most and feasible_high >= self._at_least

    def _admits_empty(self) -> bool:
        if self._at_least == 0:
            return True
        candidates = [
            c for c in self._components
            if isinstance(c, FlexibleScheme) and c._admits_empty()
        ]
        return len(candidates) >= self._at_least

    # -- structural operations -----------------------------------------------------------------

    def project(self, attributes) -> "FlexibleScheme":
        """Restrict the scheme to the attributes in ``X`` (used by the projection operator).

        Components that lose all their attributes disappear; cardinality bounds are
        clipped to the remaining component count.  The result is the natural scheme
        of ``π_X(FR)``.
        """
        attributes = attrset(attributes)
        new_components: List[SchemeComponent] = []
        for component in self._components:
            if isinstance(component, Attribute):
                if component in attributes:
                    new_components.append(component)
            else:
                overlap = component.attributes & attributes
                if overlap:
                    new_components.append(component.project(overlap))
        if not new_components:
            raise SchemeError(
                "projection onto {} removes every component of the scheme".format(attributes)
            )
        dropped = len(self._components) - len(new_components)
        at_least = max(0, self._at_least - dropped)
        at_most = min(self._at_most, len(new_components))
        at_least = min(at_least, at_most)
        return FlexibleScheme(at_least, at_most, new_components)

    def extend(self, attributes) -> "FlexibleScheme":
        """Add unconditioned attributes (the ε extension operator on schemes)."""
        attributes = attrset(attributes)
        if not attributes:
            return self
        overlap = attributes & self._attributes
        if overlap:
            raise SchemeError("attributes {} already present in the scheme".format(overlap))
        new_attrs = list(attributes)
        if self.is_relational:
            merged = list(self._components) + new_attrs
            return FlexibleScheme(len(merged), len(merged), merged)
        components = list(new_attrs) + [self._as_component()]
        count = len(components)
        return FlexibleScheme(count, count, components)

    def product(self, other: "FlexibleScheme") -> "FlexibleScheme":
        """Scheme of the cartesian product of two flexible relations."""
        overlap = self._attributes & other.attributes
        if overlap:
            raise SchemeError(
                "cartesian product requires disjoint schemes; shared attributes: {}".format(
                    overlap
                )
            )
        components = [self._as_component(), other._as_component()]
        return FlexibleScheme(2, 2, components)

    def outer_union(self, other: "FlexibleScheme") -> "FlexibleScheme":
        """Scheme admitting every combination admitted by either input scheme."""
        return FlexibleScheme(1, 1, [self._as_component(), other._as_component()]) \
            if self._attributes.isdisjoint(other.attributes) else _merged_union(self, other)

    def _as_component(self) -> SchemeComponent:
        """Collapse single-attribute relational schemes to a bare attribute."""
        if len(self._components) == 1 and isinstance(self._components[0], Attribute) \
                and self._at_least == self._at_most == 1:
            return self._components[0]
        return self

    # -- equality & display -------------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, FlexibleScheme):
            return NotImplemented
        return (
            self._at_least == other._at_least
            and self._at_most == other._at_most
            and _component_key(self) == _component_key(other)
        )

    def __hash__(self) -> int:
        return hash((self._at_least, self._at_most, _component_key(self)))

    def __repr__(self) -> str:
        parts = []
        for component in self._components:
            parts.append(str(component) if isinstance(component, Attribute) else repr(component))
        return "<{}, {}, {{{}}}>".format(self._at_least, self._at_most, ", ".join(parts))


def _normalize_component(component) -> SchemeComponent:
    if isinstance(component, FlexibleScheme):
        return component
    if isinstance(component, Attribute):
        return component
    if isinstance(component, str):
        return Attribute(component)
    if isinstance(component, (tuple, list)) and len(component) == 3:
        at_least, at_most, nested = component
        return FlexibleScheme(at_least, at_most, nested)
    raise SchemeError("cannot interpret {!r} as a scheme component".format(component))


def _component_attributes(component: SchemeComponent) -> AttributeSet:
    if isinstance(component, Attribute):
        return AttributeSet(component)
    return component.attributes


def _component_key(scheme: FlexibleScheme):
    keys = []
    for component in scheme.components:
        if isinstance(component, Attribute):
            keys.append(("attr", component.name))
        else:
            keys.append(("scheme", component.at_least, component.at_most, _component_key(component)))
    return tuple(sorted(keys))


def _merged_union(left: FlexibleScheme, right: FlexibleScheme) -> FlexibleScheme:
    """Outer-union scheme for overlapping inputs, built from the unfolded DNFs.

    Overlapping outer unions have no compact generic form in general; falling back to
    the disjunction of both DNFs keeps the semantics exact at the price of an
    unfolded representation.
    """
    combos = {frozenset(c.as_frozenset()) for c in left.dnf()} | {
        frozenset(c.as_frozenset()) for c in right.dnf()
    }
    variants = []
    for combo in sorted(combos, key=lambda c: sorted(a.name for a in c)):
        attributes = sorted(combo)
        variants.append(FlexibleScheme(len(attributes), len(attributes), attributes)
                        if attributes else FlexibleScheme(0, 0, list(left.attributes | right.attributes)))
    if len(variants) == 1:
        return variants[0]
    # A disjoint union over the variants would repeat attributes across components,
    # which the constructor forbids; represent the union as an UnfoldedScheme instead.
    return UnfoldedScheme(combos)


class UnfoldedScheme(FlexibleScheme):
    """A scheme given directly by its set of allowed attribute combinations.

    Produced only by overlapping outer unions, where the compact constructor cannot
    express the disjunction without repeating attributes.  It behaves like a
    flexible scheme for membership tests and DNF queries.
    """

    __slots__ = ("_combos",)

    def __init__(self, combos: Iterable[FrozenSet[Attribute]]):
        combos = {frozenset(c) for c in combos}
        if not combos:
            raise SchemeError("an unfolded scheme needs at least one combination")
        all_attrs = AttributeSet(a for combo in combos for a in combo)
        # Initialize the base class with a permissive wrapper so shared accessors work.
        super().__init__(0, len(all_attrs) or 1, list(all_attrs) or ["_placeholder"])
        self._combos = combos
        self._attributes = all_attrs

    def dnf(self) -> Set[AttributeSet]:
        return {AttributeSet(c) for c in self._combos}

    def _dnf_frozensets(self) -> Set[FrozenSet[Attribute]]:
        return set(self._combos)

    def admits(self, attributes) -> bool:
        target = frozenset(attrset(attributes).as_frozenset())
        return target in self._combos

    def count_variants(self) -> int:
        return len(self._combos)

    def __repr__(self) -> str:
        combos = sorted(
            "{" + ", ".join(sorted(a.name for a in combo)) + "}" for combo in self._combos
        )
        return "UnfoldedScheme([{}])".format(", ".join(combos))


def relational_scheme(attributes: Iterable) -> FlexibleScheme:
    """Convenience wrapper for :meth:`FlexibleScheme.relational`."""
    return FlexibleScheme.relational(attributes)
