"""Column-oriented tuple batches for the vectorized execution path.

The row engine of :mod:`repro.exec.operators` hands plain lists of
:class:`~repro.model.tuples.FlexTuple` between operators and touches every tuple
individually — attribute lookups, predicate dispatch and counter updates all pay
Python interpreter overhead once *per tuple*.  A :class:`TupleBatch` is the
vectorized alternative: it still owns the row objects (results must be sets of
``FlexTuple`` in the end, and keeping the references means a filter never has to
*rebuild* surviving tuples), but exposes the data column-at-a-time:

* :meth:`column` extracts one attribute of every row into a flat value array
  (``MISSING`` marks rows not defined on the attribute — the structural-variant
  form of NULL) together with a **presence bitmap**: an ``int`` whose bit ``i``
  is set exactly when row ``i`` carries the attribute.  Extraction happens once
  per batch and is cached, so several predicates over the same column share it;
* :meth:`presence_mask` ANDs the per-attribute bitmaps, turning a type guard
  ``TG[X]`` into one bitwise operation over the whole batch;
* :meth:`take` selects rows by index — the output of a compiled predicate — in
  a single list comprehension.

Batches interoperate with the row engine transparently: they have ``len()`` and
iterate their rows, which is all the row operators (and the result collector)
require of a batch, and :meth:`TupleBatch.of` wraps a row-engine list without
copying.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence

from repro.model.tuples import FlexTuple


class _Missing:
    """Sentinel marking "row is not defined on this attribute" in a column array."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "MISSING"


#: the single sentinel instance used in column arrays (compare with ``is``)
MISSING = _Missing()


def mask_indices(mask: int) -> List[int]:
    """The positions of the set bits of a presence/selection bitmap, ascending."""
    indices: List[int] = []
    append = indices.append
    while mask:
        low = mask & -mask
        append(low.bit_length() - 1)
        mask ^= low
    return indices


class TupleBatch:
    """A batch of heterogeneous tuples with cached column views.

    ``rows`` is adopted by reference (operators hand over freshly built lists);
    treat a batch as immutable once constructed — the column cache would go
    stale otherwise.
    """

    __slots__ = ("rows", "_columns", "_masks", "_full_mask")

    def __init__(self, rows: List[FlexTuple]):
        self.rows = rows
        self._columns: Dict[str, List] = {}
        self._masks: Dict[str, int] = {}
        self._full_mask = (1 << len(rows)) - 1

    @classmethod
    def of(cls, batch) -> "TupleBatch":
        """Coerce a row-engine batch (any iterable of tuples) without copying lists."""
        if isinstance(batch, cls):
            return batch
        if isinstance(batch, list):
            return cls(batch)
        return cls(list(batch))

    @classmethod
    def from_tuples(cls, tuples: Iterable[FlexTuple]) -> "TupleBatch":
        """A batch over a copy of ``tuples`` (accepts any iterable)."""
        return cls(list(tuples))

    # -- container protocol (what the row engine expects of a batch) -----------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[FlexTuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def to_tuples(self) -> List[FlexTuple]:
        """The rows as a plain list (a copy)."""
        return list(self.rows)

    # -- column access -----------------------------------------------------------------

    @property
    def full_mask(self) -> int:
        """The bitmap with one set bit per row (every row selected/present)."""
        return self._full_mask

    def column(self, name: str) -> List:
        """One attribute of every row as a flat value array, with ``MISSING`` in
        rows lacking the attribute.  Extracted once per batch and cached."""
        values = self._columns.get(name)
        if values is None:
            # FlexTuple._values is the tuple's internal attribute dict; the batch
            # container is the model layer's designated fast path over it.
            values = [row._values.get(name, MISSING) for row in self.rows]
            self._columns[name] = values
        return values

    def column_mask(self, name: str) -> int:
        """The presence bitmap of one attribute: bit ``i`` set iff row ``i``
        carries it.  Built lazily — plain comparisons never need it."""
        mask = self._masks.get(name)
        if mask is None:
            mask = 0
            for i, value in enumerate(self.column(name)):
                if value is not MISSING:
                    mask |= 1 << i
            self._masks[name] = mask
        return mask

    def presence_mask(self, names: Sequence[str]) -> int:
        """Bitmap of the rows defined on *every* attribute in ``names``
        (the whole-batch form of a type guard; all rows for an empty guard)."""
        mask = self._full_mask
        for name in names:
            mask &= self.column_mask(name)
            if not mask:
                break
        return mask

    # -- row selection ------------------------------------------------------------------

    def take(self, indices: Sequence[int]) -> "TupleBatch":
        """A new batch of the rows at ``indices`` (column caches are not carried)."""
        rows = self.rows
        return TupleBatch([rows[i] for i in indices])

    def take_mask(self, mask: int) -> "TupleBatch":
        """A new batch of the rows whose bit is set in ``mask``."""
        if mask == self._full_mask:
            return self
        return self.take(mask_indices(mask))

    def __repr__(self) -> str:
        return "TupleBatch({} rows, {} cached columns)".format(
            len(self.rows), len(self._columns)
        )
