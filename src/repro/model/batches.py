"""Column-oriented tuple batches for the vectorized execution path.

The row engine of :mod:`repro.exec.operators` hands plain lists of
:class:`~repro.model.tuples.FlexTuple` between operators and touches every tuple
individually — attribute lookups, predicate dispatch and counter updates all pay
Python interpreter overhead once *per tuple*.  A :class:`TupleBatch` is the
vectorized alternative: it still owns the row objects (results must be sets of
``FlexTuple`` in the end, and keeping the references means a filter never has to
*rebuild* surviving tuples), but exposes the data column-at-a-time:

* :meth:`column` extracts one attribute of every row into a flat value array
  (``MISSING`` marks rows not defined on the attribute — the structural-variant
  form of NULL) together with a **presence bitmap**: an ``int`` whose bit ``i``
  is set exactly when row ``i`` carries the attribute.  Extraction happens once
  per batch and is cached, so several predicates over the same column share it;
* :meth:`presence_mask` ANDs the per-attribute bitmaps, turning a type guard
  ``TG[X]`` into one bitwise operation over the whole batch;
* :meth:`take` selects rows by index — the output of a compiled predicate — in
  a single list comprehension.

:class:`LazyBatch` is the **lazy merged batch** the batch joins and the batch
reshaping operators emit: it carries plain per-row value *dicts* (the column
merge of a probe row and its build partner, an extended/renamed/projected row)
and defers :class:`FlexTuple` construction until something actually needs row
objects — a row-mode operator pulling the stream, an interpreted predicate, or
the final result-set collection.  Column access, presence bitmaps and
``take``-style selection all operate directly on the value dicts, so a batch
pipeline of joins, filters and reshapes never builds tuples for rows a
downstream operator discards.

Batches interoperate with the row engine transparently: they have ``len()`` and
iterate their rows (materializing a lazy batch on first touch), which is all the
row operators (and the result collector) require of a batch, and
:meth:`TupleBatch.of` wraps a row-engine list without copying.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import TupleError
from repro.model.tuples import FlexTuple


class _Missing:
    """Sentinel marking "row is not defined on this attribute" in a column array."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "MISSING"

    def __reduce__(self):
        # ``is MISSING`` identity must survive pickling — spill segments
        # (repro.governor.spill) round-trip value dicts through pickle.
        return (_missing, ())


def _missing() -> "_Missing":
    return MISSING


#: the single sentinel instance used in column arrays (compare with ``is``)
MISSING = _Missing()


def mask_indices(mask: int) -> List[int]:
    """The positions of the set bits of a presence/selection bitmap, ascending."""
    indices: List[int] = []
    append = indices.append
    while mask:
        low = mask & -mask
        append(low.bit_length() - 1)
        mask ^= low
    return indices


def merge_values(left: Dict[str, object], right: Dict[str, object]) -> Dict[str, object]:
    """Merge two per-row value dicts with :meth:`FlexTuple.merge` semantics.

    Overlapping attributes must agree (``TupleError`` otherwise — raised
    *eagerly*, so a lazy join surfaces merge conflicts at exactly the point the
    row engine would); the right side's value is kept on agreement, mirroring
    the row merge (:meth:`FlexTuple.merge` overwrites with ``other``'s value —
    1 and 1.0 are equal but not identical).  The common disjoint case costs one
    dict-splat and a length check.
    """
    merged = {**left, **right}
    if len(merged) != len(left) + len(right):
        for name, value in right.items():
            if name in left and left[name] != value:
                raise TupleError(
                    "cannot merge tuples: they disagree on attribute {!r}".format(name)
                )
    return merged


class TupleBatch:
    """A batch of heterogeneous tuples with cached column views.

    ``rows`` is adopted by reference (operators hand over freshly built lists);
    treat a batch as immutable once constructed — the column cache would go
    stale otherwise.
    """

    __slots__ = ("_rows", "_columns", "_masks", "_full_mask", "_values_list")

    def __init__(self, rows: List[FlexTuple]):
        self._rows = rows
        self._columns: Dict[str, List] = {}
        self._masks: Dict[str, int] = {}
        self._full_mask = (1 << len(rows)) - 1
        self._values_list: Optional[List[Dict[str, object]]] = None

    @classmethod
    def of(cls, batch) -> "TupleBatch":
        """Coerce a row-engine batch (any iterable of tuples) without copying lists."""
        if isinstance(batch, TupleBatch):
            return batch
        if isinstance(batch, list):
            return cls(batch)
        return cls(list(batch))

    @classmethod
    def from_tuples(cls, tuples: Iterable[FlexTuple]) -> "TupleBatch":
        """A batch over a copy of ``tuples`` (accepts any iterable)."""
        return cls(list(tuples))

    # -- container protocol (what the row engine expects of a batch) -----------------

    @property
    def rows(self) -> List[FlexTuple]:
        """The row objects (lazy batches materialize them on first access)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[FlexTuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return len(self) > 0

    def to_tuples(self) -> List[FlexTuple]:
        """The rows as a plain list (a copy)."""
        return list(self.rows)

    # -- column access -----------------------------------------------------------------

    @property
    def full_mask(self) -> int:
        """The bitmap with one set bit per row (every row selected/present)."""
        return self._full_mask

    def values_list(self) -> List[Dict[str, object]]:
        """One plain value dict per row (shared, never to be mutated).

        This is the uniform fast path the batch joins use: a regular batch
        answers with its rows' internal dicts, a :class:`LazyBatch` with the
        pending dicts it already holds — no tuple materialization either way.
        """
        values = self._values_list
        if values is None:
            values = [row._values for row in self._rows]
            self._values_list = values
        return values

    def hashes_list(self) -> List[int]:
        """One ``FlexTuple``-compatible hash per row.

        Regular batches answer from the rows' cached hashes; a lazy batch
        returns the hashes it carried from its producer (or derives and caches
        them).  Lets consumers key hash tables without rebuilding content keys.
        """
        return [row._hash for row in self.rows]

    def column(self, name: str) -> List:
        """One attribute of every row as a flat value array, with ``MISSING`` in
        rows lacking the attribute.  Extracted once per batch and cached."""
        values = self._columns.get(name)
        if values is None:
            # FlexTuple._values is the tuple's internal attribute dict; the batch
            # container is the model layer's designated fast path over it.
            values = [row.get(name, MISSING) for row in self.values_list()]
            self._columns[name] = values
        return values

    def column_mask(self, name: str) -> int:
        """The presence bitmap of one attribute: bit ``i`` set iff row ``i``
        carries it.  Built lazily — plain comparisons never need it."""
        mask = self._masks.get(name)
        if mask is None:
            mask = 0
            for i, value in enumerate(self.column(name)):
                if value is not MISSING:
                    mask |= 1 << i
            self._masks[name] = mask
        return mask

    def presence_mask(self, names: Sequence[str]) -> int:
        """Bitmap of the rows defined on *every* attribute in ``names``
        (the whole-batch form of a type guard; all rows for an empty guard)."""
        mask = self._full_mask
        for name in names:
            mask &= self.column_mask(name)
            if not mask:
                break
        return mask

    # -- row selection ------------------------------------------------------------------

    def take(self, indices: Sequence[int]) -> "TupleBatch":
        """A new batch of the rows at ``indices`` (column caches are not carried)."""
        rows = self._rows
        return TupleBatch([rows[i] for i in indices])

    def take_mask(self, mask: int) -> "TupleBatch":
        """A new batch of the rows whose bit is set in ``mask``."""
        if mask == self._full_mask:
            return self
        return self.take(mask_indices(mask))

    def __repr__(self) -> str:
        return "TupleBatch({} rows, {} cached columns)".format(
            len(self), len(self._columns)
        )


class LazyBatch(TupleBatch):
    """A batch of *pending* rows: value dicts whose ``FlexTuple``s are built on demand.

    The batch joins emit these — build columns and probe columns zipped by the
    selection vector into merged value dicts — as do the batch forms of
    extension, rename and projection.  ``hashes`` optionally carries the
    precomputed ``FlexTuple``-compatible hash per row (joins derive it from the
    ``frozenset`` dedup key anyway); without it, materialization computes the
    hashes itself.

    Column access, presence masks and :meth:`take` answer straight from the
    dicts; only iteration / :attr:`rows` access materializes — which is exactly
    when tuples cross into a row-mode operator or the final result set.
    """

    __slots__ = ("_values", "_hashes")

    def __init__(self, values: List[Dict[str, object]],
                 hashes: Optional[List[int]] = None):
        self._rows = None
        self._columns = {}
        self._masks = {}
        self._full_mask = (1 << len(values)) - 1
        self._values = values
        self._values_list = values
        self._hashes = hashes

    @property
    def rows(self) -> List[FlexTuple]:
        rows = self._rows
        if rows is None:
            from_parts = FlexTuple.from_parts
            if self._hashes is None:
                rows = [from_parts(values) for values in self._values]
            else:
                rows = [from_parts(values, hash_)
                        for values, hash_ in zip(self._values, self._hashes)]
            self._rows = rows
        return rows

    @property
    def materialized(self) -> bool:
        """Whether the row objects have been built (diagnostics / tests)."""
        return self._rows is not None

    def __len__(self) -> int:
        return len(self._values)

    def values_list(self) -> List[Dict[str, object]]:
        return self._values

    def hashes_list(self) -> List[int]:
        hashes = self._hashes
        if hashes is None:
            hashes = [hash(frozenset(values.items())) for values in self._values]
            self._hashes = hashes
        return hashes

    def take(self, indices: Sequence[int]) -> "LazyBatch":
        values = self._values
        hashes = self._hashes
        return LazyBatch([values[i] for i in indices],
                         None if hashes is None else [hashes[i] for i in indices])

    def __repr__(self) -> str:
        return "LazyBatch({} rows, materialized={})".format(
            len(self), self._rows is not None
        )
