"""The append-only write-ahead log: framed records, fsync-on-commit, group commit.

Every durable database (``Database(durable_path=...)``) routes its mutations
through a :class:`WriteAheadLog` *before* applying them in memory, so a crash
at any moment loses at most the transactions that were never acknowledged.
The log is a single append-only file:

.. code-block:: text

    +----------+----------------------------+----------------------------+---
    | RPRWAL01 | <len:u32le> <crc:u32le>    | <len:u32le> <crc:u32le>    |
    | (magic)  | <payload: len bytes>       | <payload: len bytes>       | ...
    +----------+----------------------------+----------------------------+---

Each frame carries one JSON record (compact, sorted keys).  The CRC32 covers
the payload; a frame whose length field runs past the end of the file, whose
CRC does not match, or whose payload fails to decode marks the *torn tail* —
everything from there on is the debris of a crash mid-write and is discarded
by recovery instead of crashing it (see :mod:`repro.storage.recovery`).

Record kinds (the ``op`` field):

* ``begin`` / ``commit`` / ``abort`` — explicit transaction boundaries,
  carrying a ``txn`` id.  DML records between a ``begin`` and its ``commit``
  share the id; a transaction whose ``commit`` never made it to disk is
  discarded wholesale on replay (atomicity).
* ``insert`` / ``update`` / ``delete`` — DML.  Records with ``txn: null``
  are *autocommitted*: the record is its own transaction and commit point.
* ``create_table`` / ``drop_table`` — DDL, always autonomous (applied
  immediately on replay, mirroring the live engine where a rollback does not
  undo DDL) and fsynced immediately.
* ``analyze`` — an ANALYZE marker, so recovery can rebuild the planner
  statistics the live database had collected.
* ``checkpoint`` — informational marker written right before a checkpoint
  switches the log to a fresh epoch file.

**Commit protocol.**  ``append`` buffers into the OS (``write`` + ``flush``,
never ``fsync``); ``commit`` appends the commit record and then forces the
log to disk.  With ``group_commit_window > 0`` the fsync is *deferred*: commit
records accumulate until either ``group_commit_max`` commits are pending or
the window (seconds) has elapsed since the first pending one, and a single
fsync then covers the whole batch — the classic group-commit amortization,
measured by the E17 benchmark.  Within the window a commit is acknowledged
before it is durable; that is the documented tradeoff of enabling the window.

**Failure containment.**  If a write or fsync raises (a full disk, or an
injected fault from :mod:`repro.storage.faults`), the log truncates itself
back to the last known-good offset (best effort), marks itself *broken*, and
every later append raises :class:`WALError` — the in-memory database refused
the mutation too (records are written before memory is touched), so memory
and disk stay consistent until the database is reopened.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "FRAME_HEADER",
    "MAGIC",
    "OP_ABORT",
    "OP_ANALYZE",
    "OP_BEGIN",
    "OP_CHECKPOINT",
    "OP_COMMIT",
    "OP_CREATE_TABLE",
    "OP_DELETE",
    "OP_DROP_TABLE",
    "OP_INSERT",
    "OP_UPDATE",
    "WALError",
    "WriteAheadLog",
    "encode_record",
    "frame_record",
    "read_frames",
]

#: the 8-byte file header identifying (and versioning) the log format
MAGIC = b"RPRWAL01"

#: per-frame header: payload length and payload CRC32, both little-endian u32
FRAME_HEADER = struct.Struct("<II")

#: a frame longer than this is treated as corruption, not as a real record
MAX_FRAME_BYTES = 1 << 28

# -- record kinds ---------------------------------------------------------------------

OP_BEGIN = "begin"
OP_COMMIT = "commit"
OP_ABORT = "abort"
OP_INSERT = "insert"
OP_UPDATE = "update"
OP_DELETE = "delete"
OP_CREATE_TABLE = "create_table"
OP_DROP_TABLE = "drop_table"
OP_ANALYZE = "analyze"
OP_CHECKPOINT = "checkpoint"


class WALError(ReproError):
    """The write-ahead log could not honor a request (broken log, bad state).

    ``last_good_offset`` — when known — is the byte length of the intact log
    prefix at the moment the failure was contained: everything before it
    survives a reopen, everything after it is the torn tail recovery discards.
    """

    def __init__(self, message: str, last_good_offset: Optional[int] = None):
        super().__init__(message)
        self.last_good_offset = last_good_offset


def encode_record(record: Dict[str, object]) -> bytes:
    """The canonical payload bytes of one record (compact JSON, sorted keys)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")


def frame_record(record: Dict[str, object]) -> bytes:
    """A full frame (header + payload) for one record."""
    payload = encode_record(record)
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def read_frames(data: bytes) -> Tuple[List[Dict[str, object]], int, Optional[Tuple[int, str]]]:
    """Decode every intact frame of a raw log image.

    Returns ``(records, valid_length, torn)``: the decoded records, the byte
    offset up to which the image is intact (the torn tail starts there), and
    ``None`` or ``(offset, reason)`` describing the first corruption found.
    A missing or damaged magic header yields no records and ``valid_length``
    0, so the file is rebuilt from scratch on the next open.
    """
    if len(data) < len(MAGIC) or data[: len(MAGIC)] != MAGIC:
        torn = (0, "missing or damaged file header") if data else None
        return [], 0, torn
    records: List[Dict[str, object]] = []
    position = len(MAGIC)
    total = len(data)
    while position < total:
        if position + FRAME_HEADER.size > total:
            return records, position, (position, "short frame header")
        length, crc = FRAME_HEADER.unpack_from(data, position)
        if length > MAX_FRAME_BYTES:
            return records, position, (position, "implausible frame length {}".format(length))
        start = position + FRAME_HEADER.size
        end = start + length
        if end > total:
            return records, position, (position, "short frame payload")
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return records, position, (position, "payload CRC mismatch")
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return records, position, (position, "payload is not valid JSON")
        if not isinstance(record, dict):
            return records, position, (position, "payload is not a record object")
        records.append(record)
        position = end
    return records, position, None


class WriteAheadLog:
    """One append-only log file with the commit protocol described above.

    Parameters
    ----------
    path:
        The log file.  Created (with the magic header) when missing or empty.
    group_commit_window:
        Seconds a commit's fsync may be deferred while waiting for companions;
        ``0`` (the default) fsyncs every commit individually.
    group_commit_max:
        Pending-commit count that forces the deferred fsync early.
    fsync:
        ``False`` turns the physical fsync into a flush-only no-op (for tests
        and benchmarks that measure everything but the disk).
    file_factory:
        ``callable(path, mode) -> file object``; the hook the fault-injection
        harness uses to wrap the file (see :mod:`repro.storage.faults`).
    registry:
        An optional :class:`~repro.obs.metrics.MetricsRegistry`; when present
        the log maintains the ``wal.records`` / ``wal.commits`` /
        ``wal.fsyncs`` / ``wal.bytes`` counters.
    """

    def __init__(self, path: str, group_commit_window: float = 0.0,
                 group_commit_max: int = 64, fsync: bool = True,
                 file_factory: Optional[Callable] = None,
                 registry=None):
        self.path = path
        self.group_commit_window = float(group_commit_window)
        self.group_commit_max = max(1, int(group_commit_max))
        self._fsync_enabled = fsync
        self._factory = file_factory or (lambda p, mode: open(p, mode))
        self._registry = registry
        self._broken: Optional[str] = None
        self._last_good_offset: Optional[int] = None
        self._closed = False
        existing = os.path.getsize(path) if os.path.exists(path) else 0
        self._file = self._factory(path, "ab")
        if existing < len(MAGIC):
            if existing:
                self._truncate_to(0)
            self._file.write(MAGIC)
            self._file.flush()
            existing = len(MAGIC)
        #: logical length of the intact log in bytes (header included)
        self.size = existing
        #: commit records appended but not yet covered by an fsync
        self.pending_commits = 0
        self._window_started: Optional[float] = None
        # plain counters, mirrored into the registry when one is attached
        self.records_written = 0
        self.commits = 0
        self.fsyncs = 0

    # -- bookkeeping -------------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self._registry is not None:
            self._registry.counter(name).add(amount)

    def _truncate_to(self, offset: int) -> None:
        self._file.flush()
        self._file.truncate(offset)
        self._file.seek(0, os.SEEK_END)

    def _fail(self, exc: BaseException, last_good: int) -> None:
        """Contain a write/fsync failure: roll the file back, mark broken."""
        self._broken = "{}: {}".format(type(exc).__name__, exc)
        self._last_good_offset = last_good
        try:
            self._truncate_to(last_good)
        except OSError:
            pass  # best effort — the torn tail is discarded by recovery anyway
        self.size = last_good

    def _require_healthy(self) -> None:
        if self._closed:
            raise WALError(
                "write-ahead log {!r} is closed".format(self.path))
        if self._broken is not None:
            raise WALError(
                "write-ahead log {!r} failed earlier ({}); intact through "
                "byte offset {} — reopen the database to recover".format(
                    self.path, self._broken, self._last_good_offset),
                last_good_offset=self._last_good_offset)

    # -- the append/commit protocol ------------------------------------------------------

    def append(self, record: Dict[str, object]) -> int:
        """Frame and write one record (flushed to the OS, not fsynced).

        Returns the byte offset the record starts at.  Raises
        :class:`WALError` when the log is broken; an I/O failure during the
        write breaks the log and re-raises.
        """
        self._require_healthy()
        frame = frame_record(record)
        offset = self.size
        try:
            self._file.write(frame)
            self._file.flush()
        except OSError as exc:
            self._fail(exc, offset)
            raise
        self.size = offset + len(frame)
        self.records_written += 1
        self._count("wal.records")
        self._count("wal.bytes", len(frame))
        return offset

    def commit(self, record: Dict[str, object]) -> bool:
        """Append a commit-point record and make it durable (or schedule it).

        Returns ``True`` when the commit was fsynced before returning,
        ``False`` when the group-commit window deferred the fsync.
        """
        self.append(record)
        self.commits += 1
        self._count("wal.commits")
        self.pending_commits += 1
        if self._window_started is None:
            self._window_started = time.monotonic()
        if (self.group_commit_window <= 0.0
                or self.pending_commits >= self.group_commit_max
                or time.monotonic() - self._window_started >= self.group_commit_window):
            self.sync()
            return True
        return False

    def sync(self) -> None:
        """Force everything appended so far to disk (one fsync, all pending)."""
        self._require_healthy()
        last_good = self.size
        try:
            self._file.flush()
            if self._fsync_enabled:
                fsync = getattr(self._file, "fsync", None)
                if fsync is not None:
                    fsync()
                else:
                    os.fsync(self._file.fileno())
        except OSError as exc:
            # Roll back to the last offset *before* the unsynced batch is not
            # possible (batch boundaries are gone); drop the whole file tail
            # written since the last successful fsync would need tracking —
            # instead contain the failure: the log is broken, the torn tail is
            # whatever the OS managed to persist, and recovery discards any
            # incomplete suffix.
            self._fail(exc, last_good)
            raise
        self.fsyncs += 1
        self._count("wal.fsyncs")
        self.pending_commits = 0
        self._window_started = None

    def flush(self) -> None:
        """Alias of :meth:`sync` — drain any deferred group-commit batch."""
        if self.pending_commits or self._window_started is not None:
            self.sync()

    @property
    def broken(self) -> bool:
        """True once a write/fsync failure has poisoned the log."""
        return self._broken is not None

    def close(self) -> None:
        """Drain pending commits (when healthy) and close the file.

        Idempotent: a second ``close()`` is a no-op."""
        if self._closed:
            return
        try:
            if self._broken is None:
                self.flush()
        finally:
            self._closed = True
            try:
                self._file.close()
            except OSError:
                pass

    def __repr__(self) -> str:
        return "WriteAheadLog({!r}, size={}, commits={}, fsyncs={}{})".format(
            self.path, self.size, self.commits, self.fsyncs,
            ", BROKEN" if self._broken else "")
