"""Checkpoints: atomic whole-database snapshots that bound recovery cost.

A checkpoint is the existing :func:`~repro.engine.serialization.database_to_dict`
snapshot wrapped in a small envelope and written *atomically* (temp file,
fsync, ``os.replace``) next to the write-ahead log.  The envelope names the
WAL **epoch** that starts after the snapshot::

    {"checkpoint_format": 1, "wal_epoch": 3, "database": { ... }}

The epoch is how WAL truncation stays crash-safe without ever rewriting the
snapshot: each epoch is its own log file (``wal.000003``), the snapshot
points at the epoch whose log begins empty at checkpoint time, and older
epoch files are deleted only after the switch.  Every crash window is
covered:

* crash **before** the snapshot rename — the old snapshot plus the old epoch's
  log recover exactly as if no checkpoint had been attempted;
* crash **after** the rename but before the new epoch file exists — the new
  snapshot is complete and its epoch's missing log is simply an empty log;
* crash **after** the new log exists but before old epochs are deleted — the
  stale files are ignored (the snapshot names the only epoch that counts) and
  removed on the next open.

Replaying an epoch's log on top of its snapshot is therefore trivially
idempotent: the log only ever contains work performed *after* the snapshot.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.engine.serialization import (
    SerializationError,
    atomic_write_json,
    database_to_dict,
    load_json_file,
)

__all__ = ["CHECKPOINT_FORMAT", "SNAPSHOT_FILENAME", "checkpoint_payload",
           "load_checkpoint", "wal_filename", "write_checkpoint"]

#: bumped when the checkpoint envelope changes incompatibly
CHECKPOINT_FORMAT = 1

#: the snapshot's filename inside a durable database directory
SNAPSHOT_FILENAME = "snapshot.json"


def wal_filename(epoch: int) -> str:
    """The log filename of one WAL epoch (``wal.000000``, ``wal.000001``, ...)."""
    return "wal.{:06d}".format(epoch)


def checkpoint_payload(database, wal_epoch: int) -> Dict[str, object]:
    """The envelope written by a checkpoint: format, epoch, full snapshot."""
    return {
        "checkpoint_format": CHECKPOINT_FORMAT,
        "wal_epoch": wal_epoch,
        "database": database_to_dict(database, include_data=True),
    }


def write_checkpoint(database, path: str, wal_epoch: int) -> str:
    """Atomically write a checkpoint snapshot; returns the path."""
    return atomic_write_json(path, checkpoint_payload(database, wal_epoch))


def load_checkpoint(path: str) -> Optional[Tuple[Dict[str, object], int]]:
    """Read a checkpoint envelope; ``None`` when no snapshot exists yet.

    Returns ``(database_dict, wal_epoch)``.  A snapshot with an unknown
    envelope format or a malformed shape raises
    :class:`~repro.engine.serialization.SerializationError` naming the
    problem — never a raw ``KeyError``.
    """
    if not os.path.exists(path):
        return None
    payload = load_json_file(path)
    if not isinstance(payload, dict):
        raise SerializationError(
            "checkpoint {!r}: expected an object at the top level".format(path))
    fmt = payload.get("checkpoint_format")
    if fmt != CHECKPOINT_FORMAT:
        raise SerializationError(
            "checkpoint {!r}: unsupported checkpoint_format {!r} "
            "(this build reads format {})".format(path, fmt, CHECKPOINT_FORMAT))
    epoch = payload.get("wal_epoch")
    if not isinstance(epoch, int) or epoch < 0:
        raise SerializationError(
            "checkpoint {!r}: wal_epoch must be a non-negative integer, "
            "got {!r}".format(path, epoch))
    database = payload.get("database")
    if not isinstance(database, dict):
        raise SerializationError(
            "checkpoint {!r}: missing or malformed 'database' section".format(path))
    return database, epoch
