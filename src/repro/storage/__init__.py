"""Durable storage: write-ahead logging, crash recovery, checkpoints, faults.

The paper's engine kept every byte in process memory; this package gives it a
durability story (ROADMAP item 2).  ``Database(durable_path=...)`` routes all
DML, DDL and ANALYZE activity through an append-only, CRC-framed write-ahead
log (:mod:`repro.storage.wal`), recovers to a consistent transaction boundary
on every open — tolerating arbitrarily torn or bit-flipped log tails
(:mod:`repro.storage.recovery`) — and bounds recovery cost with atomic
checkpoint snapshots that switch the log to a fresh epoch
(:mod:`repro.storage.checkpoint`).  The whole protocol is exercised
mechanically by the fault-injection harness (:mod:`repro.storage.faults`),
which kills a recorded workload at every WAL byte offset and asserts
atomicity and invariant preservation after recovery.
"""

from repro.storage.checkpoint import (
    CHECKPOINT_FORMAT,
    SNAPSHOT_FILENAME,
    load_checkpoint,
    wal_filename,
    write_checkpoint,
)
from repro.storage.durable import DurabilityManager
from repro.storage.faults import (
    CrashConsistencyError,
    FaultPlan,
    FaultyFile,
    WorkloadRecording,
    canonical_state,
    crash_at_every_offset,
    faulty_file_factory,
    record_workload,
)
from repro.storage.recovery import (
    RecoveryError,
    RecoveryReport,
    read_wal,
    replay_records,
    verify_database,
)
from repro.storage.wal import WALError, WriteAheadLog, read_frames

__all__ = [
    "CHECKPOINT_FORMAT",
    "SNAPSHOT_FILENAME",
    "CrashConsistencyError",
    "DurabilityManager",
    "FaultPlan",
    "FaultyFile",
    "RecoveryError",
    "RecoveryReport",
    "WALError",
    "WorkloadRecording",
    "WriteAheadLog",
    "canonical_state",
    "crash_at_every_offset",
    "faulty_file_factory",
    "load_checkpoint",
    "read_frames",
    "read_wal",
    "record_workload",
    "replay_records",
    "verify_database",
    "wal_filename",
    "write_checkpoint",
]
