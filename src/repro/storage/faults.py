"""Fault injection: torn writes, failing fsyncs, bit flips — and the crash harness.

Two layers live here.  :class:`FaultPlan` / :class:`FaultyFile` wrap the WAL's
file object (via the ``wal_file_factory`` hook on ``Database``) and inject
byte-granular failures:

* **torn writes** — a write that persists only its first *n* bytes and then
  raises, as a dying disk or a power cut mid-``write`` would;
* **failing calls** — ``IOError`` from ``write`` or ``fsync`` (always, or at
  the *n*-th call);
* **bit flips** — XOR masks applied to chosen absolute file offsets as the
  bytes pass through, which the CRC framing must catch at recovery time.

On top sits the property-style **crash harness**: :func:`record_workload`
runs a workload of durable units (single autocommitted statements, DDL, or
whole transactions) against a real durable database, remembering the WAL byte
offset and the canonical database state at every unit boundary; then
:func:`crash_at_every_offset` truncates the recorded log at *every byte
offset* (simulating a kill at that exact point), recovers, and asserts the
two properties the write-ahead protocol promises:

* **atomicity** — the recovered state equals the state at the last unit
  boundary at or before the truncation point, never anything in between;
* **invariants** — constraints, attribute dependencies, secondary indexes and
  statistics row counts all re-validate
  (:func:`~repro.storage.recovery.verify_database`).
"""

from __future__ import annotations

import os
import shutil
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.storage.recovery import verify_database

__all__ = ["CrashConsistencyError", "FaultPlan", "FaultyFile",
           "WorkloadRecording", "canonical_state", "crash_at_every_offset",
           "faulty_file_factory", "record_workload"]


class CrashConsistencyError(AssertionError):
    """The crash harness found a recovered state that breaks a property."""


# -- the injectable file wrapper -----------------------------------------------------


class FaultPlan:
    """Declarative description of the failures a :class:`FaultyFile` injects.

    Parameters
    ----------
    fail_after_bytes:
        Cumulative written-byte budget: the write that would cross it persists
        only the bytes up to the budget and then raises (a torn write).
    fail_fsync_at:
        1-based index of the fsync call that raises.
    always_fail_writes / always_fail_fsync:
        Unconditional failure switches.
    bit_flips:
        ``{absolute file offset: xor mask}`` applied to bytes as they are
        written through the wrapper.
    """

    def __init__(self, fail_after_bytes: Optional[int] = None,
                 fail_fsync_at: Optional[int] = None,
                 always_fail_writes: bool = False,
                 always_fail_fsync: bool = False,
                 bit_flips: Optional[Dict[int, int]] = None):
        self.fail_after_bytes = fail_after_bytes
        self.fail_fsync_at = fail_fsync_at
        self.always_fail_writes = always_fail_writes
        self.always_fail_fsync = always_fail_fsync
        self.bit_flips = dict(bit_flips or {})

    def __repr__(self) -> str:
        return ("FaultPlan(fail_after_bytes={}, fail_fsync_at={}, "
                "always_fail_writes={}, always_fail_fsync={}, bit_flips={})"
                .format(self.fail_after_bytes, self.fail_fsync_at,
                        self.always_fail_writes, self.always_fail_fsync,
                        sorted(self.bit_flips)))


class FaultyFile:
    """A file wrapper executing a :class:`FaultPlan` on the way through."""

    def __init__(self, inner, plan: FaultPlan):
        self._inner = inner
        self._plan = plan
        self._position = inner.tell()
        self._written = 0
        self._fsync_calls = 0

    def _flip(self, data: bytes) -> bytes:
        flips = self._plan.bit_flips
        if not flips:
            return data
        start = self._position
        mutated = bytearray(data)
        for offset, mask in flips.items():
            if start <= offset < start + len(mutated):
                mutated[offset - start] ^= mask
        return bytes(mutated)

    def write(self, data: bytes) -> int:
        if self._plan.always_fail_writes:
            raise IOError("injected write failure")
        budget = self._plan.fail_after_bytes
        if budget is not None and self._written + len(data) > budget:
            allowed = max(0, budget - self._written)
            if allowed:
                self._inner.write(self._flip(data[:allowed]))
                self._inner.flush()
                self._position += allowed
                self._written += allowed
            raise IOError("injected torn write after {} bytes".format(budget))
        self._inner.write(self._flip(data))
        self._position += len(data)
        self._written += len(data)
        return len(data)

    def fsync(self) -> None:
        self._fsync_calls += 1
        if (self._plan.always_fail_fsync
                or self._plan.fail_fsync_at == self._fsync_calls):
            raise IOError("injected fsync failure (call #{})".format(self._fsync_calls))
        self._inner.flush()
        os.fsync(self._inner.fileno())

    # -- plain passthroughs ----------------------------------------------------------

    def flush(self) -> None:
        self._inner.flush()

    def fileno(self) -> int:
        return self._inner.fileno()

    def truncate(self, size: Optional[int] = None) -> int:
        result = self._inner.truncate(size)
        if size is not None:
            self._position = size
        return result

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        position = self._inner.seek(offset, whence)
        self._position = position
        return position

    def tell(self) -> int:
        return self._inner.tell()

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def __repr__(self) -> str:
        return "FaultyFile({!r}, {!r})".format(self._inner, self._plan)


def faulty_file_factory(plan: FaultPlan) -> Callable:
    """A ``wal_file_factory`` for ``Database`` that wraps the log in ``plan``."""

    def factory(path: str, mode: str):
        return FaultyFile(open(path, mode), plan)

    return factory


# -- the crash harness ----------------------------------------------------------------


def canonical_state(database) -> Dict[str, Tuple]:
    """A comparable snapshot of the database's *logical* contents.

    Table names mapped to their tuples as sorted ``(attribute, value)`` item
    tuples, ordered canonically — two databases with equal canonical states
    hold exactly the same data.  Statistics are deliberately excluded (a
    replayed ANALYZE may sample differently); the harness checks their row
    counts through :func:`~repro.storage.recovery.verify_database` instead.
    """
    state = {}
    for name in database.tables():
        rows = [tuple(sorted(tup.as_dict().items())) for tup in database.table(name)]
        state[name] = tuple(sorted(rows, key=repr))
    return state


class WorkloadRecording:
    """A recorded workload: the raw WAL image plus every unit boundary."""

    def __init__(self, wal_bytes: bytes,
                 boundaries: List[Tuple[int, Dict[str, Tuple]]]):
        #: the complete, uncorrupted log image the workload produced
        self.wal_bytes = wal_bytes
        #: ``(wal byte offset, canonical state)`` after each durable unit,
        #: including the initial empty state at the file-header boundary
        self.boundaries = boundaries

    def expected_state_at(self, offset: int) -> Tuple[int, Dict[str, Tuple]]:
        """The boundary a log truncated at ``offset`` must recover to."""
        chosen = self.boundaries[0]
        for boundary in self.boundaries:
            if boundary[0] <= offset:
                chosen = boundary
            else:
                break
        return chosen

    def __repr__(self) -> str:
        return "WorkloadRecording({} bytes, {} boundaries)".format(
            len(self.wal_bytes), len(self.boundaries))


def record_workload(directory: str, units: Sequence[Callable],
                    **database_kwargs) -> WorkloadRecording:
    """Run a workload of durable units and record every boundary.

    Each element of ``units`` is a callable receiving the database and must
    perform exactly **one** durable unit — a single autocommitted statement,
    one DDL call, or one ``with db.transaction():`` block (committed or
    rolled back).  Recording boundaries at unit granularity is what lets the
    harness assert *exact* recovered states rather than set membership.
    """
    from repro.engine.database import Database

    database = Database(durable_path=directory, **database_kwargs)
    wal = database.durability.wal
    boundaries = [(wal.size, canonical_state(database))]
    for unit in units:
        unit(database)
        database.durability.wal.flush()
        boundaries.append((database.durability.wal.size, canonical_state(database)))
    database.close()
    with open(database.durability.wal.path, "rb") as handle:
        wal_bytes = handle.read()
    return WorkloadRecording(wal_bytes, boundaries)


def crash_at_every_offset(recording: WorkloadRecording, scratch_directory: str,
                          stride: int = 1,
                          **database_kwargs) -> Dict[str, int]:
    """Truncate the recorded log at every byte offset, recover, and assert.

    ``stride`` thins the sweep for expensive workloads (the final offset is
    always included); the returned summary counts what was exercised.  Raises
    :class:`CrashConsistencyError` on the first violated property.
    """
    from repro.engine.database import Database
    from repro.storage.checkpoint import wal_filename

    wal_bytes = recording.wal_bytes
    offsets = list(range(0, len(wal_bytes), max(1, stride)))
    if not offsets or offsets[-1] != len(wal_bytes):
        offsets.append(len(wal_bytes))
    summary = {"offsets_tested": 0, "transactions_discarded": 0,
               "torn_tails_seen": 0}
    for offset in offsets:
        crash_dir = os.path.join(scratch_directory, "crash-{:08d}".format(offset))
        os.makedirs(crash_dir, exist_ok=True)
        with open(os.path.join(crash_dir, wal_filename(0)), "wb") as handle:
            handle.write(wal_bytes[:offset])
        database = Database(durable_path=crash_dir, **database_kwargs)
        try:
            report = database.durability.recovery_report
            expected_offset, expected = recording.expected_state_at(offset)
            recovered = canonical_state(database)
            if recovered != expected:
                raise CrashConsistencyError(
                    "truncation at offset {}: recovered state is not the "
                    "transaction-boundary prefix at offset {} (recovered "
                    "tables {}, expected {})".format(
                        offset, expected_offset,
                        {n: len(v) for n, v in recovered.items()},
                        {n: len(v) for n, v in expected.items()}))
            problems = verify_database(database)
            if problems:
                raise CrashConsistencyError(
                    "truncation at offset {}: recovered database violates "
                    "invariants: {}".format(offset, "; ".join(problems)))
            summary["offsets_tested"] += 1
            summary["transactions_discarded"] += report.transactions_discarded
            if report.torn_reason is not None:
                summary["torn_tails_seen"] += 1
        finally:
            database.close()
            shutil.rmtree(crash_dir, ignore_errors=True)
    return summary
