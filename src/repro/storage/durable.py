"""The durability manager: glue between a ``Database`` and its WAL directory.

``Database(durable_path=...)`` owns one :class:`DurabilityManager`.  The
manager keeps a directory with at most two kinds of files::

    <durable_path>/
        snapshot.json      # the latest checkpoint (atomic rename target)
        wal.000003         # the current epoch's write-ahead log

On open it performs **recovery**: load the checkpoint snapshot if one exists,
replay the committed prefix of the current epoch's log on top of it
(discarding any torn tail and truncating the file back to the intact prefix),
re-validate every invariant, and only then open the log for appending.  At
runtime it journals every mutation *before* the table applies it
(write-ahead), tags records with transaction ids handed out by
``Database.transaction()``, fsyncs at commit points (optionally deferred by
the group-commit window), and rewrites the snapshot + switches the log epoch
on :meth:`checkpoint`.

All activity is counted through the database's
:class:`~repro.obs.metrics.MetricsRegistry` (``wal.*``, ``recovery.*``,
``checkpoint.*``) and traced through its tracer (``recovery`` / ``checkpoint``
spans, ``wal-torn-tail`` events), so durable databases are observable with
the same machinery as everything else.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.storage.checkpoint import (
    SNAPSHOT_FILENAME,
    load_checkpoint,
    wal_filename,
    write_checkpoint,
)
from repro.storage.recovery import (
    RecoveryError,
    RecoveryReport,
    read_wal,
    replay_records,
    verify_database,
)
from repro.storage.wal import (
    MAGIC,
    OP_ABORT,
    OP_ANALYZE,
    OP_BEGIN,
    OP_CHECKPOINT,
    OP_COMMIT,
    OP_CREATE_TABLE,
    OP_DELETE,
    OP_DROP_TABLE,
    OP_INSERT,
    OP_UPDATE,
    WALError,
    WriteAheadLog,
)

__all__ = ["DurabilityManager"]


class DurabilityManager:
    """Write-ahead logging, recovery and checkpointing for one database."""

    def __init__(self, database, directory: str,
                 group_commit_window: float = 0.0,
                 group_commit_max: int = 64,
                 checkpoint_every_bytes: Optional[int] = None,
                 fsync: bool = True,
                 file_factory=None):
        self.database = database
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.group_commit_window = group_commit_window
        self.group_commit_max = group_commit_max
        self.checkpoint_every_bytes = checkpoint_every_bytes
        self.fsync = fsync
        self.file_factory = file_factory
        self.epoch = 0
        self.wal: Optional[WriteAheadLog] = None
        self.recovery_report: Optional[RecoveryReport] = None
        self.checkpoints_written = 0
        self._next_txn_id = 0
        self._open_txn: Optional[int] = None
        self._txn_began = False

    # -- paths ----------------------------------------------------------------------

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.directory, SNAPSHOT_FILENAME)

    def wal_path(self, epoch: int) -> str:
        return os.path.join(self.directory, wal_filename(epoch))

    # -- open / recovery --------------------------------------------------------------

    def open(self) -> RecoveryReport:
        """Recover the on-disk state into the database and start appending."""
        database = self.database
        report = RecoveryReport()
        with database.tracer.span("recovery", directory=self.directory):
            snapshot = load_checkpoint(self.snapshot_path)
            with database._suspend_journal():
                if snapshot is not None:
                    from repro.engine.serialization import populate_database_from_dict

                    data, self.epoch = snapshot
                    populate_database_from_dict(database, data)
                    report.checkpoint_loaded = True
                report.wal_epoch = self.epoch
                path = self.wal_path(self.epoch)
                records, valid_length, torn = read_wal(path)
                if torn is not None:
                    report.torn_offset, report.torn_reason = torn
                    database.tracer.event("wal-torn-tail", offset=torn[0],
                                          reason=torn[1])
                report.valid_bytes = valid_length
                replay_records(database, records, report)
                problems = verify_database(database)
                if problems:
                    raise RecoveryError(
                        "recovered database is inconsistent: {}".format(
                            "; ".join(problems)))
            self._truncate_torn_tail(path, valid_length)
            self.wal = WriteAheadLog(
                path, group_commit_window=self.group_commit_window,
                group_commit_max=self.group_commit_max, fsync=self.fsync,
                file_factory=self.file_factory,
                registry=database.metrics_registry)
            self._next_txn_id = max(
                [r["txn"] for r in records if isinstance(r.get("txn"), int)] or [0])
            self._clean_stale_files()
        registry = database.metrics_registry
        registry.counter("recovery.runs").add()
        registry.counter("recovery.records_replayed").add(report.records_read)
        registry.counter("recovery.transactions_applied").add(
            report.transactions_applied)
        registry.counter("recovery.transactions_discarded").add(
            report.transactions_discarded)
        if report.torn_reason is not None:
            registry.counter("recovery.torn_tails").add()
        self.recovery_report = report
        return report

    @staticmethod
    def _truncate_torn_tail(path: str, valid_length: int) -> None:
        """Cut the log back to its intact prefix before appending resumes."""
        if not os.path.exists(path):
            return
        size = os.path.getsize(path)
        target = valid_length if valid_length >= len(MAGIC) else 0
        if size > target:
            with open(path, "r+b") as handle:
                handle.truncate(target)

    def _clean_stale_files(self) -> None:
        """Drop WAL files of other epochs and orphaned temp files (crash debris)."""
        current = wal_filename(self.epoch)
        for filename in os.listdir(self.directory):
            stale_wal = filename.startswith("wal.") and filename != current
            stale_tmp = filename.endswith(".tmp")
            if stale_wal or stale_tmp:
                try:
                    os.remove(os.path.join(self.directory, filename))
                except OSError:
                    pass

    # -- journaling (called by Database / Table hooks) -----------------------------------

    def log_mutation(self, table_name: str, kind: str, old, new) -> None:
        """Journal one DML statement *before* it is applied in memory.

        Inside an open transaction the record carries the transaction id (the
        ``begin`` record is written lazily, so read-only transactions leave no
        trace); outside, the record is autocommitted — it is its own commit
        point and is fsynced under the commit protocol.
        """
        record: Dict[str, object] = {"op": kind, "table": table_name,
                                     "txn": self._open_txn}
        if kind == OP_UPDATE:
            record["old"] = old.as_dict()
            record["new"] = new.as_dict()
        elif kind == OP_INSERT:
            record["values"] = new.as_dict()
        elif kind == OP_DELETE:
            record["values"] = old.as_dict()
        else:
            raise WALError("unknown mutation kind {!r}".format(kind))
        if self._open_txn is not None:
            if not self._txn_began:
                self.wal.append({"op": OP_BEGIN, "txn": self._open_txn})
                self._txn_began = True
            self.wal.append(record)
        else:
            self.wal.commit(record)

    def log_create_table(self, definition) -> None:
        from repro.engine.serialization import table_definition_to_dict

        self.wal.append({"op": OP_CREATE_TABLE,
                         "table": table_definition_to_dict(definition)})
        self.wal.sync()  # DDL is durable immediately, even inside a window

    def log_drop_table(self, name: str) -> None:
        self.wal.append({"op": OP_DROP_TABLE, "table": name})
        self.wal.sync()

    def log_analyze(self, name: Optional[str], sample_size: Optional[int]) -> None:
        self.wal.append({"op": OP_ANALYZE, "table": name,
                         "sample_size": sample_size})
        self.wal.sync()

    # -- transactions ------------------------------------------------------------------

    def begin(self) -> int:
        if self._open_txn is not None:
            raise WALError("a transaction is already open on the write-ahead log")
        self._next_txn_id += 1
        self._open_txn = self._next_txn_id
        self._txn_began = False
        return self._open_txn

    def commit(self) -> None:
        txn, self._open_txn = self._open_txn, None
        if txn is None or not self._txn_began:
            self._txn_began = False
            return
        self._txn_began = False
        self.wal.commit({"op": OP_COMMIT, "txn": txn})
        self.maybe_checkpoint()

    def abort(self) -> None:
        txn, self._open_txn = self._open_txn, None
        began, self._txn_began = self._txn_began, False
        if txn is None or not began:
            return
        try:
            # Best effort: losing the abort record is harmless (a transaction
            # without a commit is discarded by replay anyway), and the caller
            # is already unwinding an exception.
            self.wal.append({"op": OP_ABORT, "txn": txn})
        except (WALError, OSError):
            pass

    @property
    def in_transaction(self) -> bool:
        return self._open_txn is not None

    # -- checkpointing -----------------------------------------------------------------

    def checkpoint(self) -> str:
        """Snapshot the database atomically and switch to a fresh WAL epoch."""
        if self._open_txn is not None:
            raise WALError("cannot checkpoint while a transaction is open")
        database = self.database
        with database.tracer.span("checkpoint", epoch=self.epoch + 1):
            new_epoch = self.epoch + 1
            self.wal.append({"op": OP_CHECKPOINT, "epoch": new_epoch})
            self.wal.sync()
            path = write_checkpoint(database, self.snapshot_path, new_epoch)
            old_wal = self.wal
            self.wal = WriteAheadLog(
                self.wal_path(new_epoch),
                group_commit_window=self.group_commit_window,
                group_commit_max=self.group_commit_max, fsync=self.fsync,
                file_factory=self.file_factory,
                registry=database.metrics_registry)
            self.epoch = new_epoch
            old_wal.close()
            self._clean_stale_files()
        self.checkpoints_written += 1
        database.metrics_registry.counter("checkpoint.count").add()
        return path

    def maybe_checkpoint(self) -> bool:
        """Auto-checkpoint once the log crossed the configured size threshold."""
        if (self.checkpoint_every_bytes is None or self.wal is None
                or self._open_txn is not None or self.wal.broken
                or self.wal.size < self.checkpoint_every_bytes):
            return False
        self.checkpoint()
        return True

    # -- lifecycle / introspection ---------------------------------------------------------

    def close(self) -> None:
        """Abort any open transaction and close the write-ahead log.

        Idempotent — the WAL's own close guard makes a second call a no-op.
        An open transaction is aborted (best-effort abort record; replay
        discards uncommitted work either way) so a database closed mid-
        transaction leaves no transaction dangling.  The ``wal`` attribute
        stays readable for post-mortem inspection (path, size, counters);
        appending to it raises :class:`WALError`.
        """
        if self.wal is None:
            return
        txn, self._open_txn = self._open_txn, None
        began, self._txn_began = self._txn_began, False
        try:
            if txn is not None and began:
                try:
                    self.wal.append({"op": OP_ABORT, "txn": txn})
                except (WALError, OSError):
                    pass
        finally:
            self.wal.close()

    def as_dict(self) -> Dict[str, object]:
        """The durability section of ``Database.metrics()``."""
        wal = self.wal
        return {
            "directory": self.directory,
            "wal_epoch": self.epoch,
            "wal_bytes": wal.size if wal is not None else 0,
            "wal_records": wal.records_written if wal is not None else 0,
            "commits": wal.commits if wal is not None else 0,
            "fsyncs": wal.fsyncs if wal is not None else 0,
            "group_commit_window": self.group_commit_window,
            "checkpoints_written": self.checkpoints_written,
            "last_recovery": (self.recovery_report.as_dict()
                              if self.recovery_report is not None else None),
        }

    def __repr__(self) -> str:
        return "DurabilityManager({!r}, epoch={}, txn={})".format(
            self.directory, self.epoch, self._open_txn)
