"""Crash recovery: replay the committed prefix of a write-ahead log.

Recovery runs when a durable database opens (see
:class:`~repro.storage.durable.DurabilityManager`) and must deliver three
guarantees, each exercised mechanically by the fault-injection harness in
:mod:`repro.storage.faults`:

* **atomicity** — only transactions whose commit record survived are applied;
  a transaction truncated anywhere before its commit point vanishes entirely,
  so the recovered state always equals the state at some transaction boundary
  of the original history;
* **torn-tail tolerance** — a crash mid-write leaves a short or corrupt frame
  at the end of the log; recovery *detects and discards* it (and truncates the
  file back to the intact prefix) instead of crashing;
* **invariant preservation** — after replay the recovered tables are
  re-validated: scheme admission, domains, keys, attribute/functional
  dependencies, secondary-index consistency and the incrementally maintained
  statistics row counts all must hold, or :class:`RecoveryError` is raised.

Replay is idempotent with respect to the checkpoint snapshot it starts from:
the checkpoint switches the log to a fresh epoch file (see
:mod:`repro.storage.checkpoint`), so an epoch's log only ever contains work
that is *not* in the snapshot, and recovering twice — including a crash during
recovery, which only truncates debris — reaches the same state.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.engine.constraints import ConstraintChecker
from repro.errors import ReproError
from repro.model.tuples import FlexTuple
from repro.storage.wal import (
    OP_ABORT,
    OP_ANALYZE,
    OP_BEGIN,
    OP_CHECKPOINT,
    OP_COMMIT,
    OP_CREATE_TABLE,
    OP_DELETE,
    OP_DROP_TABLE,
    OP_INSERT,
    OP_UPDATE,
    read_frames,
)

__all__ = ["RecoveryError", "RecoveryReport", "read_wal", "replay_records",
           "verify_database"]


class RecoveryError(ReproError):
    """Recovery could not reach a consistent state (an invariant is broken)."""


class RecoveryReport:
    """What one recovery pass found and did — exposed via ``Database.metrics()``."""

    def __init__(self):
        self.checkpoint_loaded = False
        self.wal_epoch = 0
        self.records_read = 0
        self.valid_bytes = 0
        self.torn_offset: Optional[int] = None
        self.torn_reason: Optional[str] = None
        self.transactions_applied = 0
        self.transactions_discarded = 0
        self.operations_applied = 0
        self.ddl_applied = 0
        self.analyze_replayed = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "checkpoint_loaded": self.checkpoint_loaded,
            "wal_epoch": self.wal_epoch,
            "records_read": self.records_read,
            "valid_bytes": self.valid_bytes,
            "torn_offset": self.torn_offset,
            "torn_reason": self.torn_reason,
            "transactions_applied": self.transactions_applied,
            "transactions_discarded": self.transactions_discarded,
            "operations_applied": self.operations_applied,
            "ddl_applied": self.ddl_applied,
            "analyze_replayed": self.analyze_replayed,
        }

    def __repr__(self) -> str:
        return ("RecoveryReport(records={}, applied_txns={}, discarded_txns={}, "
                "torn={!r})".format(self.records_read, self.transactions_applied,
                                    self.transactions_discarded, self.torn_reason))


def read_wal(path: str) -> Tuple[List[Dict[str, object]], int, Optional[Tuple[int, str]]]:
    """Read a log file from disk; a missing file is an empty log.

    Returns ``(records, valid_length, torn)`` exactly like
    :func:`~repro.storage.wal.read_frames`.
    """
    if not os.path.exists(path):
        return [], 0, None
    with open(path, "rb") as handle:
        data = handle.read()
    return read_frames(data)


def _apply_operation(database, record: Dict[str, object]) -> None:
    """Apply one replayed DML record through the normal Table code paths, so
    key/secondary/dependency indexes are rebuilt as a side effect."""
    table = database.table(record["table"])
    op = record["op"]
    if op == OP_INSERT:
        table.insert(FlexTuple(record["values"]))
    elif op == OP_DELETE:
        table.delete(FlexTuple(record["values"]))
    elif op == OP_UPDATE:
        # The record carries both full images; replacing via delete + insert
        # re-checks the new tuple exactly like check_update(ignore=old) did.
        table.delete(FlexTuple(record["old"]))
        table.insert(FlexTuple(record["new"]))
    else:  # pragma: no cover - guarded by the dispatcher below
        raise RecoveryError("unknown DML op {!r}".format(op))


def _apply_ddl(database, record: Dict[str, object], report: RecoveryReport) -> None:
    from repro.engine.serialization import table_definition_from_dict

    op = record["op"]
    if op == OP_CREATE_TABLE:
        spec = table_definition_from_dict(record["table"], path="wal.create_table")
        database.create_table(
            spec["name"], spec["scheme"], domains=spec["domains"], key=spec["key"],
            dependencies=spec["dependencies"], indexes=spec["indexes"],
        )
        report.ddl_applied += 1
    elif op == OP_DROP_TABLE:
        if record["table"] in database.catalog:
            database.drop_table(record["table"])
        report.ddl_applied += 1
    elif op == OP_ANALYZE:
        try:
            database.analyze(record.get("table"),
                             sample_size=record.get("sample_size"))
            report.analyze_replayed += 1
        except ReproError:
            # The analyzed table may have been dropped later in the log; a
            # marker that no longer applies is harmless.
            pass


def replay_records(database, records: List[Dict[str, object]],
                   report: Optional[RecoveryReport] = None) -> RecoveryReport:
    """Replay decoded records into a database, applying committed work only.

    DML tagged with a ``txn`` id is buffered until that transaction's commit
    record; an ``abort`` — or simply never seeing the commit (the crash ate
    it) — discards the buffer.  Autocommitted DML (``txn: null``) and DDL /
    ANALYZE markers apply immediately, mirroring the live engine where DDL is
    not undone by a rollback.  The caller is expected to have journaling
    suppressed (see ``Database._suspend_journal``) so replay does not re-log
    itself.
    """
    if report is None:
        report = RecoveryReport()
    report.records_read += len(records)
    open_txn: Optional[int] = None
    buffer: List[Dict[str, object]] = []
    for record in records:
        op = record.get("op")
        if op == OP_BEGIN:
            if open_txn is not None and buffer:
                report.transactions_discarded += 1
            open_txn, buffer = record.get("txn"), []
        elif op == OP_COMMIT:
            if record.get("txn") == open_txn and open_txn is not None:
                for buffered in buffer:
                    _apply_operation(database, buffered)
                    report.operations_applied += 1
                report.transactions_applied += 1
            open_txn, buffer = None, []
        elif op == OP_ABORT:
            if open_txn is not None:
                report.transactions_discarded += 1
            open_txn, buffer = None, []
        elif op in (OP_INSERT, OP_UPDATE, OP_DELETE):
            txn = record.get("txn")
            if txn is None:
                _apply_operation(database, record)
                report.operations_applied += 1
                report.transactions_applied += 1
            elif txn == open_txn:
                buffer.append(record)
            else:
                # A stray record of a transaction we never saw begin — debris
                # from a log bug; safer to drop than to guess.
                report.transactions_discarded += 1
        elif op in (OP_CREATE_TABLE, OP_DROP_TABLE, OP_ANALYZE):
            _apply_ddl(database, record, report)
        elif op == OP_CHECKPOINT:
            pass  # informational marker only
        else:
            raise RecoveryError("unknown WAL record op {!r}".format(op))
    if open_txn is not None and buffer:
        report.transactions_discarded += 1
    return report


def verify_database(database) -> List[str]:
    """Re-validate every invariant of a recovered database.

    Returns a list of human-readable problems (empty when consistent):

    * every stored tuple re-passes scheme admission, domain conformance, key
      uniqueness and the declared attribute/functional dependencies (levels
      mirror the table's own enforcement flags, so a database opened with
      ``enforce_constraints=False`` is not failed for constraints it never
      enforced);
    * every maintained hash index contains exactly the stored tuples defined
      on its attributes (rebuilt indexes must match the data);
    * the incrementally maintained statistics row counts agree with the
      tables.
    """
    problems: List[str] = []
    for name in database.tables():
        table = database.table(name)
        live = table.checker
        fresh = ConstraintChecker(
            table.definition,
            check_scheme=live.check_scheme,
            check_domains=live.check_domains,
            check_dependencies=live.check_dependencies,
        )
        for tup in sorted(table, key=repr):
            try:
                fresh.check_insert(tup)
                fresh.register_tuple(tup)
            except ReproError as exc:
                problems.append("table {!r}: {}".format(name, exc))
        for index in live.indexes():
            indexed = set()
            for _key, bucket in index.groups():
                indexed.update(bucket)
            expected = {tup for tup in table if tup.is_defined_on(index.attributes)}
            if indexed != expected:
                problems.append(
                    "table {!r}: index on {} holds {} tuples, expected {}".format(
                        name, index.attributes, len(indexed), len(expected)))
        statistics = database.statistics.peek(name)
        if statistics is not None and statistics.row_count != len(table):
            problems.append(
                "table {!r}: statistics row_count {} != stored {}".format(
                    name, statistics.row_count, len(table)))
    return problems
